//! The seeded deterministic lossy channel.
//!
//! A [`LossyChannel`] carries opaque messages from a sender to a receiver
//! through a configurable impairment model ([`LinkQuality`]): per-message
//! drop and duplication, a fixed base latency, uniform latency jitter (which
//! bounds how far a message can be reordered past its successors), and one
//! scheduled partition window during which every transmission is lost.
//!
//! **Determinism discipline.** Every per-message decision — drop, latency
//! jitter, duplication, the duplicate's jitter — is drawn from a SplitMix64
//! stream derived from `(channel seed, message index)`. The schedule is
//! therefore a pure function of the sequence of `send` calls: no global RNG,
//! no dependence on how many other channels exist or in what order the
//! simulation pumps them. Two runs that offer the same messages at the same
//! times observe byte-identical delivery schedules at any worker count.

use hdc_runtime::{SplitMix64, GOLDEN_GAMMA};
use serde::{Deserialize, Serialize};

/// The impairment model of one directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkQuality {
    /// Per-message loss probability in `[0, 1]`.
    pub drop_p: f64,
    /// Per-message duplication probability in `[0, 1]` (the copy takes an
    /// independently jittered path).
    pub dup_p: f64,
    /// Base one-way latency, seconds.
    pub latency_s: f64,
    /// Uniform extra latency in `[0, jitter_s)` per delivered copy. Non-zero
    /// jitter reorders messages; its magnitude bounds the reordering depth
    /// (a message can arrive at most `jitter_s` later than an ideal path).
    pub jitter_s: f64,
    /// Start of the scheduled partition window, seconds.
    pub partition_at_s: f64,
    /// Length of the partition window, seconds (`0` disables it). Every
    /// transmission offered while the window is open is lost.
    pub partition_for_s: f64,
}

impl LinkQuality {
    /// A clean short-haul link: 50 ms latency, no impairments.
    pub fn clean() -> Self {
        LinkQuality {
            drop_p: 0.0,
            dup_p: 0.0,
            latency_s: 0.05,
            jitter_s: 0.0,
            partition_at_s: 0.0,
            partition_for_s: 0.0,
        }
    }

    /// This quality with per-message loss probability `p`.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// This quality with per-message duplication probability `p`.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// This quality with uniform latency jitter (reordering) up to `s`.
    pub fn with_jitter(mut self, s: f64) -> Self {
        self.jitter_s = s;
        self
    }

    /// This quality with a partition window `[at, at + for_s)`.
    pub fn with_partition(mut self, at: f64, for_s: f64) -> Self {
        self.partition_at_s = at;
        self.partition_for_s = for_s;
        self
    }

    /// Whether the scheduled partition is open at time `t`.
    pub fn in_partition(&self, t: f64) -> bool {
        self.partition_for_s > 0.0
            && t >= self.partition_at_s
            && t < self.partition_at_s + self.partition_for_s
    }
}

/// What a channel did with the traffic offered to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Messages offered by the sender.
    pub offered: u64,
    /// Messages lost (random drop or partition).
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Copies handed to the receiver.
    pub delivered: u64,
}

/// One in-flight copy: `(deliver_at, enqueue tiebreak, payload)`.
#[derive(Debug, Clone)]
struct InFlight<T> {
    deliver_at: f64,
    tie: u64,
    payload: T,
}

/// A directed, seeded, deterministic lossy channel. See the module docs for
/// the impairment and determinism model.
#[derive(Debug, Clone)]
pub struct LossyChannel<T> {
    quality: LinkQuality,
    seed: u64,
    /// Messages offered so far — the per-message stream index.
    offered: u64,
    /// Enqueue counter breaking delivery ties deterministically.
    tie: u64,
    in_flight: Vec<InFlight<T>>,
    stats: ChannelStats,
}

impl<T: Clone> LossyChannel<T> {
    /// A channel with the given impairment model and decision seed.
    pub fn new(quality: LinkQuality, seed: u64) -> Self {
        LossyChannel {
            quality,
            seed,
            offered: 0,
            tie: 0,
            in_flight: Vec::new(),
            stats: ChannelStats::default(),
        }
    }

    /// The impairment model in force.
    pub fn quality(&self) -> LinkQuality {
        self.quality
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Whether nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Earliest time any in-flight copy becomes deliverable — the channel's
    /// contribution to an event-driven scheduler's next-due computation.
    /// `None` when nothing is in flight.
    pub fn next_due(&self) -> Option<f64> {
        self.in_flight
            .iter()
            .map(|m| m.deliver_at)
            .min_by(|a, b| a.partial_cmp(b).expect("finite delivery times"))
    }

    /// Offers one message at time `now`. All impairment decisions for this
    /// message (and its duplicate, if any) are made here, from the stream
    /// derived from `(seed, message index)`.
    pub fn send(&mut self, now: f64, msg: T) {
        let index = self.offered;
        self.offered += 1;
        self.stats.offered += 1;

        // the message's own decision stream
        let mut stream = SplitMix64::new(self.seed ^ index.wrapping_mul(GOLDEN_GAMMA));
        let drop_u = stream.next_unit_f64();
        let jitter_u = stream.next_unit_f64();
        let dup_u = stream.next_unit_f64();
        let dup_jitter_u = stream.next_unit_f64();

        if self.quality.in_partition(now) || drop_u < self.quality.drop_p {
            self.stats.dropped += 1;
            return;
        }
        let base = now + self.quality.latency_s;
        self.enqueue(base + jitter_u * self.quality.jitter_s, msg.clone());
        if dup_u < self.quality.dup_p {
            self.stats.duplicated += 1;
            self.enqueue(base + dup_jitter_u * self.quality.jitter_s, msg);
        }
    }

    fn enqueue(&mut self, deliver_at: f64, payload: T) {
        let tie = self.tie;
        self.tie += 1;
        self.in_flight.push(InFlight {
            deliver_at,
            tie,
            payload,
        });
    }

    /// Drains every copy due by `now`, in `(deliver_at, enqueue order)`
    /// order — the receiver's observed order.
    pub fn poll(&mut self, now: f64) -> Vec<T> {
        if self.in_flight.is_empty() {
            return Vec::new();
        }
        let mut due: Vec<InFlight<T>> = Vec::new();
        let mut rest: Vec<InFlight<T>> = Vec::with_capacity(self.in_flight.len());
        for m in self.in_flight.drain(..) {
            if m.deliver_at <= now {
                due.push(m);
            } else {
                rest.push(m);
            }
        }
        self.in_flight = rest;
        due.sort_by(|a, b| {
            a.deliver_at
                .partial_cmp(&b.deliver_at)
                .expect("finite delivery times")
                .then(a.tie.cmp(&b.tie))
        });
        self.stats.delivered += due.len() as u64;
        due.into_iter().map(|m| m.payload).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_delivers_everything_in_order() {
        let mut ch = LossyChannel::new(LinkQuality::clean(), 1);
        for i in 0..10u32 {
            ch.send(i as f64 * 0.1, i);
        }
        let got = ch.poll(10.0);
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(ch.is_idle());
        assert_eq!(ch.stats().delivered, 10);
        assert_eq!(ch.stats().dropped, 0);
    }

    #[test]
    fn nothing_delivers_before_the_latency() {
        let mut ch = LossyChannel::new(LinkQuality::clean(), 1);
        ch.send(0.0, 7u32);
        assert!(ch.poll(0.04).is_empty());
        assert_eq!(ch.poll(0.06), vec![7]);
    }

    #[test]
    fn next_due_tracks_the_earliest_in_flight_copy() {
        let mut ch = LossyChannel::new(LinkQuality::clean(), 1);
        assert_eq!(ch.next_due(), None);
        ch.send(1.0, 1u32);
        ch.send(0.0, 0u32);
        let due = ch.next_due().expect("two copies in flight");
        assert!(
            (due - 0.05).abs() < 1e-12,
            "earliest copy at 0.05, got {due}"
        );
        // polling at the due time drains it and advances next_due
        assert_eq!(ch.poll(due), vec![0]);
        let due = ch.next_due().expect("one copy left");
        assert!((due - 1.05).abs() < 1e-12);
        ch.poll(10.0);
        assert_eq!(ch.next_due(), None);
    }

    #[test]
    fn drop_probability_one_loses_everything() {
        let mut ch = LossyChannel::new(LinkQuality::clean().with_drop(1.0), 3);
        for i in 0..50u32 {
            ch.send(i as f64, i);
        }
        assert!(ch.poll(1000.0).is_empty());
        assert_eq!(ch.stats().dropped, 50);
    }

    #[test]
    fn duplication_injects_extra_copies() {
        let mut ch = LossyChannel::new(LinkQuality::clean().with_dup(1.0), 5);
        for i in 0..20u32 {
            ch.send(i as f64, i);
        }
        let got = ch.poll(1000.0);
        assert_eq!(got.len(), 40);
        assert_eq!(ch.stats().duplicated, 20);
    }

    #[test]
    fn partition_window_loses_exactly_its_span() {
        let q = LinkQuality::clean().with_partition(5.0, 2.0);
        let mut ch = LossyChannel::new(q, 9);
        for i in 0..10u32 {
            ch.send(i as f64, i); // sends at t = 0..9; t=5,6 are partitioned
        }
        let got = ch.poll(100.0);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 7, 8, 9]);
        assert_eq!(ch.stats().dropped, 2);
    }

    #[test]
    fn jitter_reorders_but_poll_order_is_deterministic() {
        let q = LinkQuality::clean().with_jitter(1.0);
        let run = || {
            let mut ch = LossyChannel::new(q, 77);
            for i in 0..30u32 {
                ch.send(i as f64 * 0.01, i);
            }
            ch.poll(100.0)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, (0..30).collect::<Vec<_>>(), "jitter must reorder");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..30).collect::<Vec<_>>(), "nothing lost");
    }

    #[test]
    fn reordering_depth_is_bounded_by_jitter() {
        // with jitter_s = 0.5 and sends 0.1 s apart, a message can arrive at
        // most 5 positions late
        let q = LinkQuality::clean().with_jitter(0.5);
        let mut ch = LossyChannel::new(q, 123);
        for i in 0..100u32 {
            ch.send(i as f64 * 0.1, i);
        }
        let got = ch.poll(1000.0);
        for (pos, &m) in got.iter().enumerate() {
            let displacement = (pos as i64 - i64::from(m)).abs();
            assert!(displacement <= 5, "message {m} displaced by {displacement}");
        }
    }
}
