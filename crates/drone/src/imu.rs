//! IMU sensor model and flight-state estimation.
//!
//! Paper, Section II: *"The integration of an appropriate sensor like an IMU
//! to indicate actual flight is yet to be discussed in greater detail."* The
//! point of the sensor is honesty: the navigation lights should reflect what
//! the drone is actually doing, not what it was commanded to do. This module
//! supplies:
//!
//! * [`Imu`] — a 6-axis sensor model with bias, noise and gravity,
//! * [`FlightStateEstimator`] — a debounced estimator deriving
//!   [`FlightState`] from IMU samples (plus rotor telemetry),
//!
//! and experiment E14 wires the estimate to the light logic.

use crate::kinematics::DroneState;
use hdc_geometry::Vec3;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Standard gravity, m/s².
pub const GRAVITY: f64 = 9.80665;

/// One IMU sample: specific force and angular rate in the body frame
/// (yaw-only attitude in this simulator, so the frame share z with world).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuSample {
    /// Specific force (accelerometer), m/s². Hovering reads ≈ +g on z.
    pub accel: Vec3,
    /// Angular rate (gyro) about z, rad/s.
    pub yaw_rate: f64,
}

/// A 6-axis IMU with constant bias and white noise.
#[derive(Debug, Clone)]
pub struct Imu {
    /// Accelerometer bias, m/s².
    pub accel_bias: Vec3,
    /// Accelerometer noise standard deviation, m/s².
    pub accel_noise: f64,
    /// Gyro bias, rad/s.
    pub gyro_bias: f64,
    /// Gyro noise standard deviation, rad/s.
    pub gyro_noise: f64,
    prev_velocity: Vec3,
    prev_heading: f64,
    initialized: bool,
}

impl Imu {
    /// An ideal IMU (no bias, no noise).
    pub fn ideal() -> Self {
        Imu {
            accel_bias: Vec3::ZERO,
            accel_noise: 0.0,
            gyro_bias: 0.0,
            gyro_noise: 0.0,
            prev_velocity: Vec3::ZERO,
            prev_heading: 0.0,
            initialized: false,
        }
    }

    /// A consumer-grade MEMS IMU (typical bias/noise magnitudes).
    pub fn mems() -> Self {
        Imu {
            accel_bias: Vec3::new(0.05, -0.03, 0.08),
            accel_noise: 0.08,
            gyro_bias: 0.002,
            gyro_noise: 0.005,
            ..Imu::ideal()
        }
    }

    /// Samples the IMU given the current true state and the time step used
    /// to difference velocity into acceleration.
    ///
    /// # Panics
    /// Panics in debug builds if `dt` is not positive.
    pub fn sample<R: Rng>(&mut self, state: &DroneState, dt: f64, rng: &mut R) -> ImuSample {
        debug_assert!(dt > 0.0, "dt must be positive");
        let accel_true = if self.initialized {
            (state.velocity - self.prev_velocity) / dt
        } else {
            Vec3::ZERO
        };
        let yaw_rate_true = if self.initialized {
            hdc_geometry::signed_angle_diff(self.prev_heading, state.heading) / dt
        } else {
            0.0
        };
        self.prev_velocity = state.velocity;
        self.prev_heading = state.heading;
        self.initialized = true;

        let mut gauss = |sd: f64| -> f64 {
            if sd <= 0.0 {
                return 0.0;
            }
            let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            z * sd
        };
        // accelerometers measure specific force: kinematic accel minus gravity
        // (z-up world frame: hovering reads +g on z)
        let specific = accel_true + Vec3::new(0.0, 0.0, GRAVITY);
        ImuSample {
            accel: specific
                + self.accel_bias
                + Vec3::new(
                    gauss(self.accel_noise),
                    gauss(self.accel_noise),
                    gauss(self.accel_noise),
                ),
            yaw_rate: yaw_rate_true + self.gyro_bias + gauss(self.gyro_noise),
        }
    }
}

/// A barometric altimeter with white noise.
///
/// Constant-rate climbs and descents produce *zero* acceleration, so an
/// IMU alone cannot hold the climbing/descending estimate — the barometer
/// supplies the direct vertical-velocity observation a real flight stack
/// fuses in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Barometer {
    /// Altitude noise standard deviation, metres.
    pub noise_m: f64,
}

impl Barometer {
    /// An ideal barometer.
    pub fn ideal() -> Self {
        Barometer { noise_m: 0.0 }
    }

    /// A consumer barometer (~2 cm short-term noise).
    pub fn consumer() -> Self {
        Barometer { noise_m: 0.02 }
    }

    /// Samples the altitude.
    pub fn sample<R: Rng>(&self, state: &DroneState, rng: &mut R) -> f64 {
        if self.noise_m <= 0.0 {
            return state.position.z;
        }
        let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        state.position.z + z * self.noise_m
    }
}

/// The flight state derived from sensing (what the lights should indicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlightState {
    /// On the ground, rotors stopped.
    Grounded,
    /// Rotors turning, no significant motion (hover or idle on ground).
    Hovering,
    /// Net upward motion.
    Climbing,
    /// Net downward motion.
    Descending,
    /// Horizontal transit.
    Translating,
}

/// Debounced flight-state estimator over IMU samples and rotor telemetry.
///
/// Integrates vertical specific force (minus gravity) into a vertical
/// velocity estimate with a leaky integrator (suppresses bias drift), plus
/// a horizontal acceleration activity detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlightStateEstimator {
    vertical_velocity: f64,
    horizontal_activity: f64,
    state: FlightState,
    /// Leak factor per second for the velocity integrator.
    pub leak_per_s: f64,
    /// Vertical-speed threshold for climb/descent, m/s.
    pub vertical_threshold: f64,
    /// Horizontal-activity threshold, m/s².
    pub horizontal_threshold: f64,
    /// Consecutive agreeing samples needed to switch state.
    pub debounce: u32,
    /// Barometer blending gain, 1/s (complementary filter).
    pub baro_blend_per_s: f64,
    pending: Option<(FlightState, u32)>,
    prev_altitude: Option<f64>,
}

impl FlightStateEstimator {
    /// Creates an estimator with defaults tuned for the simulator's drones.
    pub fn new() -> Self {
        FlightStateEstimator {
            vertical_velocity: 0.0,
            horizontal_activity: 0.0,
            state: FlightState::Grounded,
            leak_per_s: 0.8,
            vertical_threshold: 0.3,
            horizontal_threshold: 0.5,
            debounce: 3,
            baro_blend_per_s: 3.0,
            pending: None,
            prev_altitude: None,
        }
    }

    /// The current estimate.
    pub fn state(&self) -> FlightState {
        self.state
    }

    /// The estimated vertical velocity, m/s.
    pub fn vertical_velocity(&self) -> f64 {
        self.vertical_velocity
    }

    /// Feeds one IMU sample plus rotor telemetry (no barometer: the
    /// vertical estimate leaks toward zero between accelerations).
    pub fn update(&mut self, sample: &ImuSample, rotors_on: bool, dt: f64) -> FlightState {
        self.update_fused(sample, None, rotors_on, dt)
    }

    /// Feeds one IMU sample plus an optional barometric altitude and rotor
    /// telemetry. With a barometer the vertical velocity is a complementary
    /// fusion (accelerometer for bandwidth, baro differencing for DC), so
    /// constant-rate climbs and descents hold.
    pub fn update_fused(
        &mut self,
        sample: &ImuSample,
        altitude_m: Option<f64>,
        rotors_on: bool,
        dt: f64,
    ) -> FlightState {
        // integrate vertical specific force minus gravity
        let az = sample.accel.z - GRAVITY;
        self.vertical_velocity += az * dt;
        match altitude_m {
            Some(alt) => {
                if let Some(prev) = self.prev_altitude {
                    let v_baro = (alt - prev) / dt;
                    let k = (self.baro_blend_per_s * dt).min(1.0);
                    self.vertical_velocity += (v_baro - self.vertical_velocity) * k;
                }
                self.prev_altitude = Some(alt);
            }
            None => {
                // no DC reference: leak to suppress bias drift
                self.vertical_velocity *= (1.0 - self.leak_per_s * dt).max(0.0);
            }
        }
        // horizontal activity: low-passed |a_xy|
        let axy = sample.accel.xy().norm();
        let alpha = (2.0 * dt).min(1.0);
        self.horizontal_activity += (axy - self.horizontal_activity) * alpha;

        let raw = if !rotors_on {
            FlightState::Grounded
        } else if self.vertical_velocity > self.vertical_threshold {
            FlightState::Climbing
        } else if self.vertical_velocity < -self.vertical_threshold {
            FlightState::Descending
        } else if self.horizontal_activity > self.horizontal_threshold {
            FlightState::Translating
        } else {
            FlightState::Hovering
        };

        // debounce
        if raw == self.state {
            self.pending = None;
        } else {
            match self.pending {
                Some((p, n)) if p == raw => {
                    if n + 1 >= self.debounce {
                        self.state = raw;
                        self.pending = None;
                    } else {
                        self.pending = Some((p, n + 1));
                    }
                }
                _ => self.pending = Some((raw, 1)),
            }
        }
        self.state
    }
}

impl Default for FlightStateEstimator {
    fn default() -> Self {
        FlightStateEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drone::{Drone, DroneConfig};
    use crate::patterns::FlightPattern;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run_phase(
        drone: &mut Drone,
        imu: &mut Imu,
        est: &mut FlightStateEstimator,
        rng: &mut SmallRng,
        steps: usize,
    ) -> Vec<FlightState> {
        let mut states = Vec::new();
        for _ in 0..steps {
            drone.tick(0.05);
            let s = imu.sample(drone.state(), 0.05, rng);
            states.push(est.update(&s, drone.state().rotors_on, 0.05));
        }
        states
    }

    #[test]
    fn ideal_imu_reads_gravity_at_rest() {
        let mut imu = Imu::ideal();
        let mut rng = SmallRng::seed_from_u64(1);
        let state = DroneState::parked(Vec3::ZERO);
        let _ = imu.sample(&state, 0.05, &mut rng); // initialise
        let s = imu.sample(&state, 0.05, &mut rng);
        assert!((s.accel.z - GRAVITY).abs() < 1e-9);
        assert!(s.accel.xy().norm() < 1e-9);
        assert_eq!(s.yaw_rate, 0.0);
    }

    #[test]
    fn estimator_tracks_takeoff_and_landing() {
        let mut drone = Drone::new(DroneConfig::default());
        let mut imu = Imu::ideal();
        let mut est = FlightStateEstimator::new();
        let mut rng = SmallRng::seed_from_u64(2);

        assert_eq!(est.state(), FlightState::Grounded);
        // prime the IMU from rest so the take-off onset is observable
        // (differencing sensors need one sample of history)
        let _ = imu.sample(drone.state(), 0.05, &mut rng);
        drone.execute_pattern(FlightPattern::TakeOff {
            target_altitude: 4.0,
        });
        let climb_states = run_phase(&mut drone, &mut imu, &mut est, &mut rng, 60);
        assert!(
            climb_states.contains(&FlightState::Climbing),
            "climb detected: {climb_states:?}"
        );

        // hover a while: estimate decays back to hovering
        let hover_states = run_phase(&mut drone, &mut imu, &mut est, &mut rng, 80);
        assert_eq!(*hover_states.last().unwrap(), FlightState::Hovering);

        drone.execute_pattern(FlightPattern::Landing);
        let descent_states = run_phase(&mut drone, &mut imu, &mut est, &mut rng, 200);
        assert!(descent_states.contains(&FlightState::Descending));
        assert_eq!(*descent_states.last().unwrap(), FlightState::Grounded);
    }

    #[test]
    fn mems_noise_does_not_flap_the_estimate() {
        // a hovering drone with a noisy IMU must not oscillate between states
        let mut drone = Drone::new(DroneConfig::default());
        drone.execute_pattern(FlightPattern::TakeOff {
            target_altitude: 4.0,
        });
        while drone.is_executing() {
            drone.tick(0.05);
        }
        let mut imu = Imu::mems();
        let mut est = FlightStateEstimator::new();
        let mut rng = SmallRng::seed_from_u64(3);
        // settle
        let _ = run_phase(&mut drone, &mut imu, &mut est, &mut rng, 60);
        let states = run_phase(&mut drone, &mut imu, &mut est, &mut rng, 200);
        let switches = states.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches <= 4,
            "estimate flapped {switches} times: noisy debounce too weak"
        );
    }

    #[test]
    fn rotors_off_is_authoritative() {
        let mut est = FlightStateEstimator::new();
        let sample = ImuSample {
            accel: Vec3::new(0.0, 0.0, GRAVITY + 3.0), // looks like a climb
            yaw_rate: 0.0,
        };
        for _ in 0..10 {
            est.update(&sample, false, 0.05);
        }
        assert_eq!(est.state(), FlightState::Grounded);
    }

    #[test]
    fn debounce_delays_switching() {
        let mut est = FlightStateEstimator::new();
        let hover = ImuSample {
            accel: Vec3::new(0.0, 0.0, GRAVITY),
            yaw_rate: 0.0,
        };
        let climb = ImuSample {
            accel: Vec3::new(0.0, 0.0, GRAVITY + 8.0),
            yaw_rate: 0.0,
        };
        for _ in 0..20 {
            est.update(&hover, true, 0.05);
        }
        assert_eq!(est.state(), FlightState::Hovering);
        // one climb-looking sample is not enough
        est.update(&climb, true, 0.05);
        assert_eq!(est.state(), FlightState::Hovering);
        for _ in 0..6 {
            est.update(&climb, true, 0.05);
        }
        assert_eq!(est.state(), FlightState::Climbing);
    }

    #[test]
    fn barometer_fusion_holds_constant_rate_descent() {
        // constant-rate descent: zero acceleration, so the IMU-only path
        // decays to Hovering — the baro fusion must hold Descending
        let mut est_imu = FlightStateEstimator::new();
        let mut est_baro = FlightStateEstimator::new();
        let level = ImuSample {
            accel: Vec3::new(0.0, 0.0, GRAVITY),
            yaw_rate: 0.0,
        };
        let mut alt = 10.0;
        let mut imu_only_final = FlightState::Hovering;
        let mut fused_final = FlightState::Hovering;
        for _ in 0..200 {
            alt -= 0.8 * 0.05; // 0.8 m/s descent
            imu_only_final = est_imu.update(&level, true, 0.05);
            fused_final = est_baro.update_fused(&level, Some(alt), true, 0.05);
        }
        assert_eq!(
            fused_final,
            FlightState::Descending,
            "baro holds the estimate"
        );
        assert_ne!(
            imu_only_final,
            FlightState::Descending,
            "IMU-only decays (documents why the baro exists)"
        );
    }

    #[test]
    fn noisy_barometer_still_usable() {
        use crate::kinematics::DroneState;
        let baro = Barometer::consumer();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut est = FlightStateEstimator::new();
        let level = ImuSample {
            accel: Vec3::new(0.0, 0.0, GRAVITY),
            yaw_rate: 0.0,
        };
        let mut state = DroneState {
            position: Vec3::new(0.0, 0.0, 10.0),
            velocity: Vec3::new(0.0, 0.0, -0.8),
            heading: 0.0,
            rotors_on: true,
        };
        let mut last = FlightState::Hovering;
        for _ in 0..200 {
            state.position.z -= 0.8 * 0.05;
            let alt = baro.sample(&state, &mut rng);
            last = est.update_fused(&level, Some(alt), true, 0.05);
        }
        assert_eq!(last, FlightState::Descending);
        assert!(
            est.vertical_velocity() < -0.4,
            "v_z estimate {}",
            est.vertical_velocity()
        );
    }

    #[test]
    fn ideal_barometer_reads_truth() {
        use crate::kinematics::DroneState;
        let baro = Barometer::ideal();
        let mut rng = SmallRng::seed_from_u64(8);
        let state = DroneState::parked(Vec3::new(0.0, 0.0, 3.5));
        assert_eq!(baro.sample(&state, &mut rng), 3.5);
    }

    #[test]
    fn translation_detected() {
        let mut est = FlightStateEstimator::new();
        let hover = ImuSample {
            accel: Vec3::new(0.0, 0.0, GRAVITY),
            yaw_rate: 0.0,
        };
        for _ in 0..10 {
            est.update(&hover, true, 0.05);
        }
        let lateral = ImuSample {
            accel: Vec3::new(2.0, 0.0, GRAVITY),
            yaw_rate: 0.0,
        };
        for _ in 0..20 {
            est.update(&lateral, true, 0.05);
        }
        assert_eq!(est.state(), FlightState::Translating);
    }
}
