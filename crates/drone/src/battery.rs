//! Battery / energy model.
//!
//! The paper flags "power requirements with respect to illumination
//! distance" as an open issue for the LED ring; the energy model lets the
//! experiments account for signalling and flight power together.

use serde::{Deserialize, Serialize};

/// A simple energy-integral battery model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryModel {
    capacity_wh: f64,
    remaining_wh: f64,
    /// Power draw while hovering, watts.
    pub hover_power_w: f64,
    /// Additional power per (m/s)² of airspeed, watts.
    pub drag_power_coeff: f64,
    /// Power draw of the LED ring at full brightness, watts.
    pub led_power_w: f64,
}

impl BatteryModel {
    /// A full battery of the given capacity (watt-hours).
    ///
    /// # Panics
    /// Panics if `capacity_wh` is not positive.
    pub fn new(capacity_wh: f64) -> Self {
        assert!(capacity_wh > 0.0, "battery capacity must be positive");
        BatteryModel {
            capacity_wh,
            remaining_wh: capacity_wh,
            hover_power_w: 350.0,
            drag_power_coeff: 1.2,
            led_power_w: 6.0,
        }
    }

    /// H520-class defaults (≈ 71 Wh pack, ~25 min hover).
    pub fn h520() -> Self {
        BatteryModel::new(71.0)
    }

    /// Remaining energy, Wh.
    pub fn remaining_wh(&self) -> f64 {
        self.remaining_wh
    }

    /// State of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        self.remaining_wh / self.capacity_wh
    }

    /// Whether the pack is below the 15 % return-home reserve.
    pub fn below_reserve(&self) -> bool {
        self.state_of_charge() < 0.15
    }

    /// Whether the pack is empty.
    pub fn is_empty(&self) -> bool {
        self.remaining_wh <= 0.0
    }

    /// Drains the pack for `dt` seconds of flight at `airspeed` m/s with the
    /// LEDs at `led_brightness` (0–1). Rotors-off consumes only LED power.
    ///
    /// Returns the energy consumed in Wh.
    pub fn drain(&mut self, dt: f64, airspeed: f64, rotors_on: bool, led_brightness: f64) -> f64 {
        let flight_w = if rotors_on {
            self.hover_power_w + self.drag_power_coeff * airspeed * airspeed
        } else {
            0.0
        };
        let power_w = flight_w + self.led_power_w * led_brightness.clamp(0.0, 1.0);
        let wh = power_w * dt / 3600.0;
        self.remaining_wh = (self.remaining_wh - wh).max(0.0);
        wh
    }

    /// Hover endurance from full charge, seconds (ignoring LEDs).
    pub fn hover_endurance_s(&self) -> f64 {
        self.capacity_wh * 3600.0 / self.hover_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_at_start() {
        let b = BatteryModel::h520();
        assert_eq!(b.state_of_charge(), 1.0);
        assert!(!b.below_reserve());
        assert!(!b.is_empty());
    }

    #[test]
    fn hover_endurance_reasonable() {
        let b = BatteryModel::h520();
        let minutes = b.hover_endurance_s() / 60.0;
        assert!((10.0..40.0).contains(&minutes), "endurance {minutes} min");
    }

    #[test]
    fn drain_integrates_power() {
        let mut b = BatteryModel::new(1000.0);
        let wh = b.drain(3600.0, 0.0, true, 0.0);
        assert!((wh - b.hover_power_w).abs() < 1e-9);
        assert!((b.remaining_wh() - (1000.0 - b.hover_power_w)).abs() < 1e-9);
    }

    #[test]
    fn moving_costs_more_than_hovering() {
        let mut hover = BatteryModel::new(100.0);
        let mut fast = BatteryModel::new(100.0);
        hover.drain(600.0, 0.0, true, 0.0);
        fast.drain(600.0, 10.0, true, 0.0);
        assert!(fast.remaining_wh() < hover.remaining_wh());
    }

    #[test]
    fn rotors_off_only_leds() {
        let mut b = BatteryModel::new(100.0);
        let wh = b.drain(3600.0, 5.0, false, 1.0);
        assert!((wh - b.led_power_w).abs() < 1e-9);
    }

    #[test]
    fn reserve_and_empty() {
        let mut b = BatteryModel::new(1.0);
        b.drain(8.0 * 3600.0 * 1.0 / 350.0 * 350.0, 0.0, true, 0.0); // drain a lot
        assert!(b.is_empty() || b.below_reserve());
        b.drain(1e9, 0.0, true, 0.0);
        assert!(b.is_empty());
        assert_eq!(b.remaining_wh(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        BatteryModel::new(0.0);
    }
}
