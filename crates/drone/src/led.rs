//! The all-round LED ring (Figure 1) and the discarded vertical array.
//!
//! Paper, Section II: a ring of 10 tri-colour LEDs indicates the horizontal
//! flight direction with red/green/white navigation colours (FAA-style); the
//! whole ring turns red when a safety function triggers — and all-red "can
//! be achieved as a default setting", which is why [`LedRing::default`]
//! starts in danger mode (fail-safe). There was no consensus on an all-green
//! ring; [`LedMode::AllClear`] exists but nothing in the protocol uses it.
//!
//! The additional vertical array (take-off animated bottom→top, landing
//! top→bottom) confused users and "will be discarded in future versions";
//! [`VerticalArray`] implements it anyway so experiment E9 can reproduce the
//! confusion quantitatively with an observer model.

use hdc_geometry::normalize_angle;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of LEDs on the all-round ring.
pub const RING_LED_COUNT: usize = 10;

/// Colour of one tri-colour LED.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LedColor {
    /// LED off.
    Off,
    /// Red (port / danger).
    Red,
    /// Green (starboard).
    Green,
    /// White (nose and tail strobes).
    White,
}

impl fmt::Display for LedColor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LedColor::Off => "off",
            LedColor::Red => "red",
            LedColor::Green => "green",
            LedColor::White => "white",
        };
        f.write_str(s)
    }
}

/// Operating mode of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LedMode {
    /// All LEDs extinguished (rotors stopped after landing, Figure 2 step 3).
    Off,
    /// Navigation layout: red port, green starboard, white nose/tail.
    Navigation,
    /// All-red: safety function triggered (also the fail-safe default).
    Danger,
    /// All-green: proposed but without consensus; unused by the protocol.
    AllClear,
}

/// The colours of all ring LEDs at one instant, indexed clockwise from the
/// nose (LED 0 at body azimuth 0°, 36° apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingSnapshot {
    /// Colour per LED.
    pub leds: [LedColor; RING_LED_COUNT],
}

impl RingSnapshot {
    /// Counts LEDs showing `color`.
    pub fn count(&self, color: LedColor) -> usize {
        self.leds.iter().filter(|c| **c == color).count()
    }
}

impl fmt::Display for RingSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.leds.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", &c.to_string()[..1])?;
        }
        Ok(())
    }
}

/// The 10-LED all-round ring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedRing {
    mode: LedMode,
    /// Brightness 0–1 (feeds the battery model; the paper flags illumination
    /// power as an open issue).
    pub brightness: f64,
}

impl LedRing {
    /// A ring in the given mode at full brightness.
    pub fn new(mode: LedMode) -> Self {
        LedRing {
            mode,
            brightness: 1.0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> LedMode {
        self.mode
    }

    /// Switches mode.
    pub fn set_mode(&mut self, mode: LedMode) {
        self.mode = mode;
    }

    /// Body-frame colours. LED `i` sits at body azimuth `i × 36°` measured
    /// clockwise from the nose.
    ///
    /// Navigation layout: LEDs on the starboard side (azimuth 36°–144°)
    /// green, port side (216°–324°) red, nose (0°) and tail (180°) white —
    /// the FAA-style convention the paper builds on.
    pub fn snapshot(&self) -> RingSnapshot {
        let mut leds = [LedColor::Off; RING_LED_COUNT];
        match self.mode {
            LedMode::Off => {}
            LedMode::Danger => leds = [LedColor::Red; RING_LED_COUNT],
            LedMode::AllClear => leds = [LedColor::Green; RING_LED_COUNT],
            LedMode::Navigation => {
                for (i, led) in leds.iter_mut().enumerate() {
                    let az = i as f64 * 36.0;
                    *led = if az == 0.0 || az == 180.0 {
                        LedColor::White
                    } else if az < 180.0 {
                        LedColor::Green // starboard
                    } else {
                        LedColor::Red // port
                    };
                }
            }
        }
        RingSnapshot { leds }
    }

    /// The colour an observer at world bearing `observer_bearing` (radians,
    /// from the drone, 0 = +x) sees on the nearest-facing LED, given the
    /// drone's `heading`.
    ///
    /// This is how a ground observer reads the flight direction: green means
    /// they are on the drone's starboard side, red port, white nose/tail.
    pub fn color_toward(&self, heading: f64, observer_bearing: f64) -> LedColor {
        let snapshot = self.snapshot();
        // body azimuth of the observer, clockwise from the nose
        let rel = normalize_angle(heading - observer_bearing);
        let clockwise_deg = rel.to_degrees().rem_euclid(360.0);
        let idx = ((clockwise_deg / 36.0).round() as usize) % RING_LED_COUNT;
        snapshot.leds[idx]
    }
}

impl Default for LedRing {
    /// Danger mode: the paper's fail-safe default setting.
    fn default() -> Self {
        LedRing::new(LedMode::Danger)
    }
}

// ---------------------------------------------------------------------------

/// Number of LEDs on the vertical leg array.
pub const VERTICAL_LED_COUNT: usize = 5;

/// Direction of the vertical-array animation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VerticalAnimation {
    /// Bottom→top sweep: taking off.
    TakeOff,
    /// Top→bottom sweep: landing.
    Landing,
}

/// The vertical LED array on the drone's legs (discarded in the paper after
/// user feedback; kept here for experiment E9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerticalArray {
    animation: VerticalAnimation,
    /// Sweep period, seconds.
    pub period_s: f64,
}

impl VerticalArray {
    /// Creates the array with a 1-second sweep.
    pub fn new(animation: VerticalAnimation) -> Self {
        VerticalArray {
            animation,
            period_s: 1.0,
        }
    }

    /// The animation direction.
    pub fn animation(&self) -> VerticalAnimation {
        self.animation
    }

    /// LED states at time `t`: exactly one LED lit, index 0 = bottom.
    pub fn frame(&self, t: f64) -> [bool; VERTICAL_LED_COUNT] {
        let phase = (t / self.period_s).rem_euclid(1.0);
        let step = (phase * VERTICAL_LED_COUNT as f64) as usize % VERTICAL_LED_COUNT;
        let idx = match self.animation {
            VerticalAnimation::TakeOff => step,
            VerticalAnimation::Landing => VERTICAL_LED_COUNT - 1 - step,
        };
        let mut leds = [false; VERTICAL_LED_COUNT];
        leds[idx] = true;
        leds
    }

    /// Observer model for experiment E9: samples `samples` frames at the
    /// given `interval_s`, flips each observed LED with probability
    /// `flip_prob` (foliage occlusion, glare), then infers the sweep
    /// direction from the phase slope of the lit index.
    ///
    /// Returns `None` when the samples are too corrupted to even guess.
    pub fn observe_direction<R: Rng>(
        &self,
        samples: usize,
        interval_s: f64,
        flip_prob: f64,
        rng: &mut R,
    ) -> Option<VerticalAnimation> {
        let mut indices: Vec<(f64, f64)> = Vec::with_capacity(samples);
        for k in 0..samples {
            let t = k as f64 * interval_s;
            let mut frame = self.frame(t);
            for led in frame.iter_mut() {
                if rng.gen::<f64>() < flip_prob {
                    *led = !*led;
                }
            }
            // observer reads the mean lit position (may be ambiguous)
            let lit: Vec<usize> = frame
                .iter()
                .enumerate()
                .filter(|(_, on)| **on)
                .map(|(i, _)| i)
                .collect();
            if lit.len() == 1 {
                indices.push((t, lit[0] as f64));
            }
        }
        if indices.len() < 2 {
            return None;
        }
        // phase-unwrapped slope of the lit index over time
        let mut score = 0.0;
        for w in indices.windows(2) {
            let (t0, i0) = w[0];
            let (t1, i1) = w[1];
            if t1 - t0 > self.period_s * 0.9 {
                continue; // gap too long to compare phases
            }
            let mut d = i1 - i0;
            // unwrap: the sweep restarts at the ends
            if d > VERTICAL_LED_COUNT as f64 / 2.0 {
                d -= VERTICAL_LED_COUNT as f64;
            } else if d < -(VERTICAL_LED_COUNT as f64) / 2.0 {
                d += VERTICAL_LED_COUNT as f64;
            }
            score += d;
        }
        if score > 0.0 {
            Some(VerticalAnimation::TakeOff)
        } else if score < 0.0 {
            Some(VerticalAnimation::Landing)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_is_danger() {
        let ring = LedRing::default();
        assert_eq!(ring.mode(), LedMode::Danger);
        assert_eq!(ring.snapshot().count(LedColor::Red), RING_LED_COUNT);
    }

    #[test]
    fn navigation_layout() {
        let ring = LedRing::new(LedMode::Navigation);
        let s = ring.snapshot();
        assert_eq!(s.leds[0], LedColor::White, "nose");
        assert_eq!(s.leds[5], LedColor::White, "tail");
        for i in 1..5 {
            assert_eq!(s.leds[i], LedColor::Green, "starboard LED {i}");
        }
        for i in 6..10 {
            assert_eq!(s.leds[i], LedColor::Red, "port LED {i}");
        }
        assert_eq!(s.count(LedColor::Green), 4);
        assert_eq!(s.count(LedColor::Red), 4);
        assert_eq!(s.count(LedColor::White), 2);
    }

    #[test]
    fn off_and_allclear() {
        assert_eq!(
            LedRing::new(LedMode::Off).snapshot().count(LedColor::Off),
            10
        );
        assert_eq!(
            LedRing::new(LedMode::AllClear)
                .snapshot()
                .count(LedColor::Green),
            10
        );
    }

    #[test]
    fn observer_reads_side_colors() {
        let ring = LedRing::new(LedMode::Navigation);
        // drone flying east (heading 0): an observer to the north (bearing
        // π/2) is on the drone's port side → red; south observer sees green
        let north = ring.color_toward(0.0, std::f64::consts::FRAC_PI_2);
        let south = ring.color_toward(0.0, -std::f64::consts::FRAC_PI_2);
        assert_eq!(north, LedColor::Red);
        assert_eq!(south, LedColor::Green);
        // head-on and tail-on observers see white
        assert_eq!(ring.color_toward(0.0, 0.0), LedColor::White);
        assert_eq!(
            ring.color_toward(0.0, std::f64::consts::PI),
            LedColor::White
        );
    }

    #[test]
    fn observed_color_rotates_with_heading() {
        let ring = LedRing::new(LedMode::Navigation);
        // same observer, drone turns: colour changes
        let before = ring.color_toward(0.0, std::f64::consts::FRAC_PI_2);
        let after = ring.color_toward(std::f64::consts::PI, std::f64::consts::FRAC_PI_2);
        assert_ne!(before, after);
    }

    #[test]
    fn display_forms() {
        assert_eq!(LedColor::Red.to_string(), "red");
        let s = LedRing::new(LedMode::Danger).snapshot().to_string();
        assert_eq!(s, "r r r r r r r r r r");
    }

    #[test]
    fn vertical_sweep_directions() {
        let up = VerticalArray::new(VerticalAnimation::TakeOff);
        assert_eq!(up.frame(0.0), [true, false, false, false, false]);
        assert_eq!(up.frame(0.5), [false, false, true, false, false]);
        let down = VerticalArray::new(VerticalAnimation::Landing);
        assert_eq!(down.frame(0.0), [false, false, false, false, true]);
        assert_eq!(down.frame(0.5), [false, false, true, false, false]);
    }

    #[test]
    fn sweep_is_periodic() {
        let up = VerticalArray::new(VerticalAnimation::TakeOff);
        assert_eq!(up.frame(0.3), up.frame(1.3));
        assert_eq!(up.frame(0.3), up.frame(10.3));
    }

    #[test]
    fn clean_observation_is_correct() {
        let mut rng = SmallRng::seed_from_u64(5);
        for anim in [VerticalAnimation::TakeOff, VerticalAnimation::Landing] {
            let arr = VerticalArray::new(anim);
            let got = arr.observe_direction(10, 0.1, 0.0, &mut rng);
            assert_eq!(got, Some(anim), "noise-free observation must be exact");
        }
    }

    #[test]
    fn noisy_sparse_observation_degrades() {
        // the paper's user feedback: hard to distinguish. With heavy noise
        // and sparse sampling, accuracy approaches chance.
        let mut rng = SmallRng::seed_from_u64(6);
        let arr = VerticalArray::new(VerticalAnimation::TakeOff);
        let trials = 200;
        let correct = (0..trials)
            .filter(|_| {
                arr.observe_direction(3, 0.45, 0.35, &mut rng) == Some(VerticalAnimation::TakeOff)
            })
            .count();
        let acc = correct as f64 / trials as f64;
        assert!(
            acc < 0.75,
            "heavily corrupted observation should not be reliable, got {acc}"
        );
    }
}
