//! Point-mass drone kinematics with acceleration and speed limits.

use hdc_geometry::{signed_angle_diff, Vec3};
use serde::{Deserialize, Serialize};

/// Instantaneous state of the drone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroneState {
    /// World position (z = altitude above ground), metres.
    pub position: Vec3,
    /// World velocity, m/s.
    pub velocity: Vec3,
    /// Heading (yaw) in radians, 0 = +x east, counter-clockwise.
    pub heading: f64,
    /// Whether the rotors are spinning.
    pub rotors_on: bool,
}

impl DroneState {
    /// A parked drone at a ground position.
    pub fn parked(position: Vec3) -> Self {
        DroneState {
            position,
            velocity: Vec3::ZERO,
            heading: 0.0,
            rotors_on: false,
        }
    }

    /// Ground speed (horizontal), m/s.
    pub fn ground_speed(&self) -> f64 {
        self.velocity.xy().norm()
    }

    /// Whether the drone is on the ground (altitude ≈ 0).
    pub fn is_grounded(&self) -> bool {
        self.position.z <= 1e-6
    }
}

impl Default for DroneState {
    fn default() -> Self {
        DroneState::parked(Vec3::ZERO)
    }
}

/// Physical limits of the platform (H520-class hexacopter defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KinematicsLimits {
    /// Maximum horizontal speed, m/s.
    pub max_speed: f64,
    /// Maximum vertical speed (both directions), m/s.
    pub max_vertical_speed: f64,
    /// Maximum acceleration, m/s².
    pub max_accel: f64,
    /// Maximum yaw rate, rad/s.
    pub max_yaw_rate: f64,
}

impl Default for KinematicsLimits {
    fn default() -> Self {
        KinematicsLimits {
            max_speed: 13.0,
            max_vertical_speed: 2.5,
            max_accel: 4.0,
            max_yaw_rate: 1.6,
        }
    }
}

/// Velocity-command kinematics: the flight controller requests a velocity
/// and a yaw rate; the model applies acceleration limits, speed caps and a
/// ground constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kinematics {
    limits: KinematicsLimits,
}

impl Kinematics {
    /// Creates a model with the given limits.
    pub fn new(limits: KinematicsLimits) -> Self {
        Kinematics { limits }
    }

    /// The limits in force.
    pub fn limits(&self) -> KinematicsLimits {
        self.limits
    }

    /// Advances the state by `dt` seconds toward the commanded velocity and
    /// heading, adding `wind` as a velocity disturbance.
    ///
    /// With rotors off the drone cannot move (it sits where it is).
    ///
    /// # Panics
    /// Panics in debug builds if `dt` is not positive.
    pub fn step(
        &self,
        state: &mut DroneState,
        commanded_velocity: Vec3,
        commanded_heading: f64,
        wind: Vec3,
        dt: f64,
    ) {
        debug_assert!(dt > 0.0, "time step must be positive");
        if !state.rotors_on {
            state.velocity = Vec3::ZERO;
            return;
        }

        // clamp command to platform limits
        let mut cmd = commanded_velocity;
        let h = cmd.xy();
        if h.norm() > self.limits.max_speed {
            let h = h.normalized().expect("non-zero") * self.limits.max_speed;
            cmd = Vec3::from_xy(h, cmd.z);
        }
        cmd.z = cmd.z.clamp(
            -self.limits.max_vertical_speed,
            self.limits.max_vertical_speed,
        );

        // acceleration limit toward the commanded velocity
        let dv = cmd - state.velocity;
        let max_dv = self.limits.max_accel * dt;
        let dv = if dv.norm() > max_dv {
            dv.normalized().expect("non-zero") * max_dv
        } else {
            dv
        };
        state.velocity += dv;

        // yaw rate limit
        let dh = signed_angle_diff(state.heading, commanded_heading);
        let max_dh = self.limits.max_yaw_rate * dt;
        state.heading = hdc_geometry::normalize_angle(state.heading + dh.clamp(-max_dh, max_dh));

        // integrate with wind; never go below ground
        state.position += (state.velocity + wind) * dt;
        if state.position.z < 0.0 {
            state.position.z = 0.0;
            state.velocity.z = state.velocity.z.max(0.0);
        }
    }
}

impl Default for Kinematics {
    fn default() -> Self {
        Kinematics::new(KinematicsLimits::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flying_state() -> DroneState {
        DroneState {
            position: Vec3::new(0.0, 0.0, 5.0),
            velocity: Vec3::ZERO,
            heading: 0.0,
            rotors_on: true,
        }
    }

    #[test]
    fn rotors_off_means_no_motion() {
        let k = Kinematics::default();
        let mut s = DroneState::parked(Vec3::ZERO);
        k.step(&mut s, Vec3::new(5.0, 0.0, 1.0), 1.0, Vec3::ZERO, 0.1);
        assert_eq!(s.position, Vec3::ZERO);
        assert_eq!(s.velocity, Vec3::ZERO);
    }

    #[test]
    fn acceleration_is_limited() {
        let k = Kinematics::default();
        let mut s = flying_state();
        k.step(&mut s, Vec3::new(10.0, 0.0, 0.0), 0.0, Vec3::ZERO, 0.1);
        // max 4 m/s² × 0.1 s = 0.4 m/s
        assert!((s.velocity.norm() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn speed_is_capped() {
        let k = Kinematics::default();
        let mut s = flying_state();
        for _ in 0..2000 {
            k.step(&mut s, Vec3::new(100.0, 0.0, 0.0), 0.0, Vec3::ZERO, 0.05);
        }
        assert!(s.ground_speed() <= k.limits().max_speed + 1e-9);
    }

    #[test]
    fn vertical_speed_capped() {
        let k = Kinematics::default();
        let mut s = flying_state();
        for _ in 0..200 {
            k.step(&mut s, Vec3::new(0.0, 0.0, 50.0), 0.0, Vec3::ZERO, 0.05);
        }
        assert!(s.velocity.z <= k.limits().max_vertical_speed + 1e-9);
    }

    #[test]
    fn yaw_rate_limited_and_wraps() {
        let k = Kinematics::default();
        let mut s = flying_state();
        k.step(&mut s, Vec3::ZERO, 3.0, Vec3::ZERO, 0.1);
        assert!((s.heading - 0.16).abs() < 1e-9, "1.6 rad/s × 0.1 s");
        // command across the wrap: from -3 to +3 rad goes the short way
        s.heading = -3.0;
        k.step(&mut s, Vec3::ZERO, 3.0, Vec3::ZERO, 0.1);
        assert!(
            s.heading < -3.0 + 1e-9 || s.heading > 3.0 - 0.2,
            "wrapped the short way: {}",
            s.heading
        );
    }

    #[test]
    fn ground_is_solid() {
        let k = Kinematics::default();
        let mut s = flying_state();
        s.position.z = 0.05;
        for _ in 0..100 {
            k.step(&mut s, Vec3::new(0.0, 0.0, -5.0), 0.0, Vec3::ZERO, 0.05);
        }
        assert_eq!(s.position.z, 0.0);
        assert!(s.is_grounded());
    }

    #[test]
    fn wind_displaces() {
        let k = Kinematics::default();
        let mut calm = flying_state();
        let mut windy = flying_state();
        for _ in 0..100 {
            k.step(&mut calm, Vec3::ZERO, 0.0, Vec3::ZERO, 0.05);
            k.step(&mut windy, Vec3::ZERO, 0.0, Vec3::new(2.0, 0.0, 0.0), 0.05);
        }
        assert!(windy.position.x > calm.position.x + 5.0);
    }

    #[test]
    fn parked_and_grounded() {
        let s = DroneState::parked(Vec3::new(1.0, 2.0, 0.0));
        assert!(s.is_grounded());
        assert!(!s.rotors_on);
        assert_eq!(s.ground_speed(), 0.0);
        assert_eq!(DroneState::default().position, Vec3::ZERO);
    }
}
