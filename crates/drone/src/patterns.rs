//! Flight patterns: execution and observer-side classification.
//!
//! Section III defines three standard patterns (take-off, cruise flight,
//! landing) and four communicative ones (*poke* to attract attention, *nod*
//! for yes, *turn* for no, and flying a *rectangle* to request the area the
//! collaborator occupies). The patterns are "unmistakable ... an embodied
//! statement of intent", i.e. a human watching the trajectory can read the
//! intent back. [`PatternExecutor`] produces the trajectories;
//! [`PatternClassifier`] is the watching human.

use hdc_geometry::{signed_angle_diff, Vec2, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A timestamped pose sample along a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedPose {
    /// Time since the pattern started, seconds.
    pub t: f64,
    /// World position.
    pub position: Vec3,
    /// Heading, radians.
    pub heading: f64,
}

/// An executed flight trajectory.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    samples: Vec<TimedPose>,
}

impl Trajectory {
    /// Wraps raw samples.
    pub fn new(samples: Vec<TimedPose>) -> Self {
        Trajectory { samples }
    }

    /// The samples in time order.
    pub fn samples(&self) -> &[TimedPose] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trajectory is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total duration, seconds.
    pub fn duration(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: TimedPose) {
        self.samples.push(sample);
    }
}

impl FromIterator<TimedPose> for Trajectory {
    fn from_iter<T: IntoIterator<Item = TimedPose>>(iter: T) -> Self {
        Trajectory::new(iter.into_iter().collect())
    }
}

/// The seven flight patterns of the drone→human language.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlightPattern {
    /// Vertical lift-off to flying height (standard).
    TakeOff {
        /// Altitude to climb to, metres.
        target_altitude: f64,
    },
    /// Vertical descent to the ground (standard; Figure 2).
    Landing,
    /// Horizontal flight to a destination at constant altitude (standard).
    Cruise {
        /// Destination position.
        to: Vec3,
    },
    /// Short forward-back lunges toward the collaborator: attract attention.
    Poke {
        /// Ground direction toward the collaborator.
        toward: Vec2,
    },
    /// Vertical dips: "yes".
    Nod,
    /// Yaw left-right swings on the spot: "no".
    Turn,
    /// Flying a rectangle to signify the area the drone wishes to occupy.
    RectangleRequest {
        /// Half-width (x) of the requested area, metres.
        half_width: f64,
        /// Half-depth (y) of the requested area, metres.
        half_depth: f64,
    },
}

/// Pattern identity without parameters (classifier output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Vertical climb.
    TakeOff,
    /// Vertical descent to ground.
    Landing,
    /// Straight horizontal transit.
    Cruise,
    /// Forward-back lunges.
    Poke,
    /// Vertical dips (yes).
    Nod,
    /// Yaw swings (no).
    Turn,
    /// Closed rectangular circuit (area request).
    RectangleRequest,
}

impl FlightPattern {
    /// The parameter-free identity of the pattern.
    pub fn kind(&self) -> PatternKind {
        match self {
            FlightPattern::TakeOff { .. } => PatternKind::TakeOff,
            FlightPattern::Landing => PatternKind::Landing,
            FlightPattern::Cruise { .. } => PatternKind::Cruise,
            FlightPattern::Poke { .. } => PatternKind::Poke,
            FlightPattern::Nod => PatternKind::Nod,
            FlightPattern::Turn => PatternKind::Turn,
            FlightPattern::RectangleRequest { .. } => PatternKind::RectangleRequest,
        }
    }
}

impl fmt::Display for PatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PatternKind::TakeOff => "take-off",
            PatternKind::Landing => "landing",
            PatternKind::Cruise => "cruise",
            PatternKind::Poke => "poke",
            PatternKind::Nod => "nod (yes)",
            PatternKind::Turn => "turn (no)",
            PatternKind::RectangleRequest => "rectangle (area request)",
        };
        f.write_str(s)
    }
}

/// Generates the analytic reference trajectory of each pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternExecutor {
    /// Sampling interval, seconds.
    pub dt: f64,
    /// Climb rate, m/s.
    pub climb_rate: f64,
    /// Descent rate, m/s.
    pub descent_rate: f64,
    /// Cruise speed, m/s.
    pub cruise_speed: f64,
    /// Lunge amplitude of the poke, metres.
    pub poke_amplitude: f64,
    /// Dip amplitude of the nod, metres.
    pub nod_amplitude: f64,
    /// Swing amplitude of the turn, radians.
    pub turn_amplitude: f64,
    /// Number of repetitions for the oscillatory patterns.
    pub repetitions: usize,
}

impl Default for PatternExecutor {
    fn default() -> Self {
        PatternExecutor {
            dt: 0.05,
            climb_rate: 1.0,
            descent_rate: 0.8,
            cruise_speed: 5.0,
            poke_amplitude: 0.8,
            nod_amplitude: 0.4,
            turn_amplitude: 0.8,
            repetitions: 3,
        }
    }
}

impl PatternExecutor {
    /// Generates the trajectory of `pattern` starting from `start` with
    /// heading `heading`.
    ///
    /// # Panics
    /// Panics if the executor's `dt` is not positive.
    pub fn generate(&self, pattern: FlightPattern, start: Vec3, heading: f64) -> Trajectory {
        assert!(self.dt > 0.0, "sampling interval must be positive");
        match pattern {
            FlightPattern::TakeOff { target_altitude } => {
                let climb = (target_altitude - start.z).max(0.0);
                let dur = climb / self.climb_rate;
                self.sample(dur, |t| {
                    (
                        Vec3::new(start.x, start.y, start.z + self.climb_rate * t.min(dur)),
                        heading,
                    )
                })
            }
            FlightPattern::Landing => {
                let dur = start.z / self.descent_rate;
                self.sample(dur, |t| {
                    (
                        Vec3::new(start.x, start.y, (start.z - self.descent_rate * t).max(0.0)),
                        heading,
                    )
                })
            }
            FlightPattern::Cruise { to } => {
                let dist = start.distance(to);
                let dur = dist / self.cruise_speed;
                let travel_heading = (to - start).xy().angle();
                self.sample(dur, |t| {
                    (start.lerp(to, (t / dur).min(1.0)), travel_heading)
                })
            }
            FlightPattern::Poke { toward } => {
                let dir = toward.normalized().unwrap_or(Vec2::X);
                let face = dir.angle();
                let period = 1.6;
                let dur = period * self.repetitions as f64;
                self.sample(dur, |t| {
                    let s = (std::f64::consts::TAU * t / period).sin().max(0.0);
                    let off = dir * (self.poke_amplitude * s);
                    (start + Vec3::from_xy(off, 0.0), face)
                })
            }
            FlightPattern::Nod => {
                let period = 1.2;
                let dur = period * self.repetitions as f64;
                self.sample(dur, |t| {
                    let s = (std::f64::consts::TAU * t / period).sin();
                    (
                        Vec3::new(
                            start.x,
                            start.y,
                            (start.z - self.nod_amplitude * s.max(0.0)).max(0.0),
                        ),
                        heading,
                    )
                })
            }
            FlightPattern::Turn => {
                let period = 1.6;
                let dur = period * self.repetitions as f64;
                self.sample(dur, |t| {
                    let s = (std::f64::consts::TAU * t / period).sin();
                    (start, heading + self.turn_amplitude * s)
                })
            }
            FlightPattern::RectangleRequest {
                half_width,
                half_depth,
            } => {
                // perimeter circuit: start at one corner, go around, return
                let corners = [
                    Vec2::new(-half_width, -half_depth),
                    Vec2::new(half_width, -half_depth),
                    Vec2::new(half_width, half_depth),
                    Vec2::new(-half_width, half_depth),
                    Vec2::new(-half_width, -half_depth),
                ];
                let mut lengths = Vec::new();
                let mut total = 0.0;
                for w in corners.windows(2) {
                    let l = w[0].distance(w[1]);
                    lengths.push(l);
                    total += l;
                }
                let dur = total / self.cruise_speed;
                self.sample(dur, |t| {
                    let mut dist = (self.cruise_speed * t).min(total - 1e-9);
                    let mut seg = 0;
                    while seg < lengths.len() && dist > lengths[seg] {
                        dist -= lengths[seg];
                        seg += 1;
                    }
                    let seg = seg.min(lengths.len() - 1);
                    let a = corners[seg];
                    let b = corners[seg + 1];
                    let p = a.lerp(b, (dist / lengths[seg]).min(1.0));
                    ((start + Vec3::from_xy(p, 0.0)), (b - a).angle())
                })
            }
        }
    }

    fn sample<F: Fn(f64) -> (Vec3, f64)>(&self, duration: f64, f: F) -> Trajectory {
        let steps = ((duration / self.dt).ceil() as usize).max(1);
        (0..=steps)
            .map(|i| {
                let t = (i as f64 * self.dt).min(duration);
                let (position, heading) = f(t);
                TimedPose {
                    t,
                    position,
                    heading,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------

/// The human-observer model: reads a trajectory back into a pattern.
///
/// Feature-based: net and oscillatory motion in the vertical, horizontal and
/// yaw axes. The features are deliberately the ones a person can see.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternClassifier {
    /// Minimum net altitude change to read climb/descent, metres.
    pub vertical_net_threshold: f64,
    /// Minimum net horizontal displacement to read a transit, metres.
    pub horizontal_net_threshold: f64,
    /// Minimum oscillation amplitude to count, metres (or radians for yaw).
    pub oscillation_threshold: f64,
    /// Minimum number of oscillation cycles to read a repeated gesture.
    pub min_cycles: usize,
}

impl Default for PatternClassifier {
    fn default() -> Self {
        PatternClassifier {
            vertical_net_threshold: 0.5,
            horizontal_net_threshold: 2.0,
            oscillation_threshold: 0.15,
            min_cycles: 2,
        }
    }
}

/// Counts oscillation cycles: pairs of alternating excursions beyond
/// ±threshold around the series mean.
fn oscillation_cycles(values: &[f64], threshold: f64) -> usize {
    if values.is_empty() {
        return 0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let mut crossings = 0usize;
    let mut state = 0i8; // -1 below, +1 above, 0 inside band
    for v in values {
        let s = if v - mean > threshold {
            1
        } else if v - mean < -threshold {
            -1
        } else {
            0
        };
        if s != 0 && s != state {
            if state != 0 {
                crossings += 1;
            }
            state = s;
        }
    }
    crossings
}

/// Counts single-sided pulses: excursions above `threshold` over the series
/// minimum (for gestures that only move one way, like the poke's lunges or
/// the nod's dips).
fn pulse_count(values: &[f64], threshold: f64) -> usize {
    if values.is_empty() {
        return 0;
    }
    let base = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut pulses = 0;
    let mut high = false;
    for v in values {
        let is_high = v - base > threshold;
        if is_high && !high {
            pulses += 1;
        }
        high = is_high;
    }
    pulses
}

impl PatternClassifier {
    /// Classifies a trajectory, or `None` for an unreadable one.
    pub fn classify(&self, traj: &Trajectory) -> Option<PatternKind> {
        let s = traj.samples();
        if s.len() < 3 {
            return None;
        }
        let first = s.first().unwrap();
        let last = s.last().unwrap();

        let dz_net = last.position.z - first.position.z;
        let horiz_net = last.position.xy().distance(first.position.xy());
        let zs: Vec<f64> = s.iter().map(|p| p.position.z).collect();
        let z_pulses = pulse_count(
            &zs.iter().map(|z| -z).collect::<Vec<f64>>(),
            self.oscillation_threshold,
        );

        // yaw oscillation (unwrapped increments)
        let mut yaw = vec![0.0];
        for w in s.windows(2) {
            let d = signed_angle_diff(w[0].heading, w[1].heading);
            yaw.push(yaw.last().unwrap() + d);
        }
        let yaw_cycles = oscillation_cycles(&yaw, self.oscillation_threshold);

        // horizontal positions relative to start, projected on the dominant axis
        let rel: Vec<Vec2> = s
            .iter()
            .map(|p| p.position.xy() - first.position.xy())
            .collect();
        let max_r = rel.iter().map(|v| v.norm()).fold(0.0, f64::max);
        let principal = rel
            .iter()
            .max_by(|a, b| a.norm_sq().partial_cmp(&b.norm_sq()).unwrap())
            .and_then(|v| v.normalized())
            .unwrap_or(Vec2::X);
        let proj: Vec<f64> = rel.iter().map(|v| v.dot(principal)).collect();
        let horiz_pulses = pulse_count(&proj, self.oscillation_threshold);

        // enclosed area (shoelace over the horizontal track)
        let mut area2 = 0.0;
        for w in rel.windows(2) {
            area2 += w[0].cross(w[1]);
        }
        let enclosed_area = (area2 / 2.0).abs();

        // --- decision tree, most specific first ---
        // vertical transits
        if dz_net > self.vertical_net_threshold && horiz_net < self.horizontal_net_threshold {
            return Some(PatternKind::TakeOff);
        }
        if dz_net < -self.vertical_net_threshold
            && last.position.z < 0.1
            && horiz_net < self.horizontal_net_threshold
        {
            return Some(PatternKind::Landing);
        }
        // closed rectangle: clearly enclosed area, returns to start
        if enclosed_area > 0.4 && horiz_net < 1.0 && max_r > 0.8 {
            return Some(PatternKind::RectangleRequest);
        }
        // repeated gestures
        if yaw_cycles >= self.min_cycles && max_r < 0.5 && dz_net.abs() < 0.3 {
            return Some(PatternKind::Turn);
        }
        if z_pulses >= self.min_cycles && dz_net.abs() < 0.3 && max_r < 0.5 {
            return Some(PatternKind::Nod);
        }
        if horiz_pulses >= self.min_cycles && horiz_net < 1.0 && dz_net.abs() < 0.3 {
            return Some(PatternKind::Poke);
        }
        // transit
        if horiz_net >= self.horizontal_net_threshold {
            return Some(PatternKind::Cruise);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_patterns() -> Vec<FlightPattern> {
        vec![
            FlightPattern::TakeOff {
                target_altitude: 3.0,
            },
            FlightPattern::Landing,
            FlightPattern::Cruise {
                to: Vec3::new(20.0, 5.0, 5.0),
            },
            FlightPattern::Poke {
                toward: Vec2::new(0.0, 1.0),
            },
            FlightPattern::Nod,
            FlightPattern::Turn,
            FlightPattern::RectangleRequest {
                half_width: 2.0,
                half_depth: 1.5,
            },
        ]
    }

    fn start_for(p: &FlightPattern) -> Vec3 {
        match p {
            FlightPattern::TakeOff { .. } => Vec3::ZERO,
            _ => Vec3::new(0.0, 0.0, 5.0),
        }
    }

    #[test]
    fn every_pattern_reads_back_unmistakably() {
        // the legibility requirement of Section III
        let exec = PatternExecutor::default();
        let classifier = PatternClassifier::default();
        for p in all_patterns() {
            let traj = exec.generate(p, start_for(&p), 0.3);
            let got = classifier.classify(&traj);
            assert_eq!(got, Some(p.kind()), "{:?} misread as {:?}", p.kind(), got);
        }
    }

    #[test]
    fn takeoff_ends_at_altitude() {
        let exec = PatternExecutor::default();
        let traj = exec.generate(
            FlightPattern::TakeOff {
                target_altitude: 4.0,
            },
            Vec3::ZERO,
            0.0,
        );
        assert!((traj.samples().last().unwrap().position.z - 4.0).abs() < 1e-9);
        assert!((traj.duration() - 4.0).abs() < 0.1, "4 m at 1 m/s");
    }

    #[test]
    fn landing_reaches_ground_vertically() {
        let exec = PatternExecutor::default();
        let start = Vec3::new(2.0, 3.0, 4.0);
        let traj = exec.generate(FlightPattern::Landing, start, 1.0);
        let last = traj.samples().last().unwrap();
        assert!(last.position.z < 1e-9);
        assert!(
            last.position.xy().distance(start.xy()) < 1e-9,
            "landing is vertical"
        );
    }

    #[test]
    fn cruise_is_straight_and_faces_travel() {
        let exec = PatternExecutor::default();
        let to = Vec3::new(10.0, 10.0, 5.0);
        let traj = exec.generate(FlightPattern::Cruise { to }, Vec3::new(0.0, 0.0, 5.0), 0.0);
        let expected_heading = std::f64::consts::FRAC_PI_4;
        for p in traj.samples() {
            assert!((p.heading - expected_heading).abs() < 1e-9);
        }
        assert!(traj.samples().last().unwrap().position.distance(to) < 0.3);
    }

    #[test]
    fn poke_returns_to_station() {
        let exec = PatternExecutor::default();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let traj = exec.generate(FlightPattern::Poke { toward: Vec2::Y }, start, 0.0);
        let last = traj.samples().last().unwrap();
        assert!(
            last.position.distance(start) < 0.1,
            "poke ends where it began"
        );
        // lunges only go toward the person (positive y), never behind
        for p in traj.samples() {
            assert!(p.position.y >= -1e-9);
        }
    }

    #[test]
    fn nod_dips_never_climb() {
        let exec = PatternExecutor::default();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let traj = exec.generate(FlightPattern::Nod, start, 0.0);
        for p in traj.samples() {
            assert!(
                p.position.z <= 5.0 + 1e-9,
                "nod dips below hover, not above"
            );
        }
    }

    #[test]
    fn turn_keeps_position() {
        let exec = PatternExecutor::default();
        let start = Vec3::new(1.0, 2.0, 5.0);
        let traj = exec.generate(FlightPattern::Turn, start, 0.5);
        for p in traj.samples() {
            assert_eq!(p.position, start);
        }
        // heading actually swings both ways
        let hs: Vec<f64> = traj.samples().iter().map(|p| p.heading).collect();
        let max = hs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = hs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 0.5 + 0.5 && min < 0.5 - 0.5);
    }

    #[test]
    fn rectangle_closes_and_encloses_area() {
        let exec = PatternExecutor::default();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let traj = exec.generate(
            FlightPattern::RectangleRequest {
                half_width: 2.0,
                half_depth: 1.0,
            },
            start,
            0.0,
        );
        let first = traj.samples().first().unwrap().position;
        let last = traj.samples().last().unwrap().position;
        assert!(first.distance(last) < 0.3, "circuit closes");
        // altitude constant throughout
        for p in traj.samples() {
            assert!((p.position.z - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn wind_jitter_does_not_fool_the_observer() {
        // Section III: patterns only vary if caught in gusts — moderate
        // jitter must not change the reading
        let exec = PatternExecutor::default();
        let classifier = PatternClassifier::default();
        for p in all_patterns() {
            let traj = exec.generate(p, start_for(&p), 0.3);
            // deterministic pseudo-noise ±4 cm
            let noisy: Trajectory = traj
                .samples()
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let n = ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
                    TimedPose {
                        t: s.t,
                        position: s.position + Vec3::new(n * 0.08, -n * 0.08, n * 0.04),
                        heading: s.heading + n * 0.03,
                    }
                })
                .collect();
            assert_eq!(
                classifier.classify(&noisy),
                Some(p.kind()),
                "{:?} lost in jitter",
                p.kind()
            );
        }
    }

    #[test]
    fn degenerate_trajectories_unreadable() {
        let classifier = PatternClassifier::default();
        assert_eq!(classifier.classify(&Trajectory::default()), None);
        let hover: Trajectory = (0..100)
            .map(|i| TimedPose {
                t: i as f64 * 0.05,
                position: Vec3::new(0.0, 0.0, 5.0),
                heading: 0.0,
            })
            .collect();
        assert_eq!(classifier.classify(&hover), None, "hovering says nothing");
    }

    #[test]
    fn kind_mapping() {
        assert_eq!(FlightPattern::Nod.kind(), PatternKind::Nod);
        assert_eq!(
            FlightPattern::RectangleRequest {
                half_width: 1.0,
                half_depth: 1.0
            }
            .kind(),
            PatternKind::RectangleRequest
        );
        assert_eq!(PatternKind::Turn.to_string(), "turn (no)");
    }

    #[test]
    fn trajectory_helpers() {
        let t: Trajectory = (0..5)
            .map(|i| TimedPose {
                t: i as f64,
                position: Vec3::ZERO,
                heading: 0.0,
            })
            .collect();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.duration(), 4.0);
        let mut t2 = Trajectory::default();
        t2.push(TimedPose {
            t: 0.0,
            position: Vec3::ZERO,
            heading: 0.0,
        });
        assert_eq!(t2.len(), 1);
        assert_eq!(t2.duration(), 0.0);
    }
}
