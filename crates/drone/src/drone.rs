//! The drone facade: state, signalling, energy and pattern execution.

use crate::battery::BatteryModel;
use crate::controller::WaypointController;
use crate::kinematics::{DroneState, Kinematics, KinematicsLimits};
use crate::led::{LedMode, LedRing};
use crate::patterns::{FlightPattern, PatternExecutor, PatternKind, TimedPose, Trajectory};
use crate::wind::WindModel;
use hdc_geometry::Vec3;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a simulated drone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroneConfig {
    /// Platform limits.
    pub limits: KinematicsLimits,
    /// Waypoint controller gains.
    pub controller: WaypointController,
    /// Wind environment.
    pub wind: WindModel,
    /// Initial ground position.
    pub home: Vec3,
    /// RNG seed for the wind process.
    pub seed: u64,
    /// Battery pack capacity, watt-hours (fault injection: a sagging pack
    /// flies the same platform with less energy).
    pub battery_wh: f64,
}

impl Default for DroneConfig {
    fn default() -> Self {
        DroneConfig {
            limits: KinematicsLimits::default(),
            controller: WaypointController::default(),
            wind: WindModel::calm(),
            home: Vec3::ZERO,
            seed: 7,
            battery_wh: 71.0,
        }
    }
}

/// Discrete events emitted by the drone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DroneEvent {
    /// Rotors spun up.
    RotorsStarted,
    /// Rotors stopped (on the ground).
    RotorsStopped,
    /// Navigation lights switched on.
    LightsNavigation,
    /// All lights extinguished (only ever after rotors stop — Figure 2).
    LightsOut,
    /// Ring switched to all-red danger.
    LightsDanger,
    /// A pattern started executing.
    PatternStarted(PatternKind),
    /// A pattern finished.
    PatternComplete(PatternKind),
    /// A safety function fired (reason attached).
    SafetyTriggered(String),
    /// Battery fell below the return-home reserve.
    BatteryReserve,
}

/// A simulated drone: kinematic state, LED ring, battery, wind, and a
/// pattern/waypoint execution engine.
///
/// Flight patterns are flown as scripted playback of the analytic
/// [`PatternExecutor`] trajectories (the patterns *are* the message — they
/// must be exact); free waypoint transits go through the proportional
/// controller and the acceleration-limited kinematics.
#[derive(Debug, Clone)]
pub struct Drone {
    config: DroneConfig,
    kinematics: Kinematics,
    executor: PatternExecutor,
    state: DroneState,
    ring: LedRing,
    battery: BatteryModel,
    time: f64,
    rng: SmallRng,
    executing: Option<(FlightPattern, Trajectory, f64)>,
    waypoint: Option<Vec3>,
    events: Vec<DroneEvent>,
    trace: Trajectory,
    safety_engaged: bool,
}

impl Drone {
    /// Creates a parked drone. Per the paper's fail-safe default the ring
    /// starts in danger mode until the machine is healthy and flying.
    pub fn new(config: DroneConfig) -> Self {
        Drone {
            kinematics: Kinematics::new(config.limits),
            executor: PatternExecutor::default(),
            state: DroneState::parked(config.home),
            ring: LedRing::default(),
            battery: BatteryModel::new(config.battery_wh),
            time: 0.0,
            rng: SmallRng::seed_from_u64(config.seed),
            executing: None,
            waypoint: None,
            events: Vec::new(),
            trace: Trajectory::default(),
            safety_engaged: false,
            config,
        }
    }

    /// Current kinematic state.
    pub fn state(&self) -> &DroneState {
        &self.state
    }

    /// The LED ring.
    pub fn ring(&self) -> &LedRing {
        &self.ring
    }

    /// Mutable access to the LED ring (fault injection: channel/brightness
    /// degradation).
    pub fn ring_mut(&mut self) -> &mut LedRing {
        &mut self.ring
    }

    /// The battery.
    pub fn battery(&self) -> &BatteryModel {
        &self.battery
    }

    /// Simulation time, seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Whether a safety function has engaged (latched until reset on ground).
    pub fn safety_engaged(&self) -> bool {
        self.safety_engaged
    }

    /// Whether a pattern is currently executing.
    pub fn is_executing(&self) -> bool {
        self.executing.is_some()
    }

    /// Whether a waypoint transit is pending (controller still converging).
    pub fn has_waypoint(&self) -> bool {
        self.waypoint.is_some()
    }

    /// The recorded flight trace (for observers / experiments).
    pub fn trace(&self) -> &Trajectory {
        &self.trace
    }

    /// Clears the recorded trace, returning it.
    pub fn take_trace(&mut self) -> Trajectory {
        std::mem::take(&mut self.trace)
    }

    /// Drains the pending event queue.
    pub fn drain_events(&mut self) -> Vec<DroneEvent> {
        std::mem::take(&mut self.events)
    }

    fn emit(&mut self, e: DroneEvent) {
        self.events.push(e);
    }

    /// Starts a flight pattern from the current pose.
    ///
    /// Take-off spins the rotors up and switches the navigation lights on
    /// first; other patterns require the drone to be airborne (ignored with
    /// an event otherwise — a real machine would reject the command).
    pub fn execute_pattern(&mut self, pattern: FlightPattern) {
        match pattern {
            FlightPattern::TakeOff { .. } => {
                if !self.state.rotors_on {
                    self.state.rotors_on = true;
                    self.emit(DroneEvent::RotorsStarted);
                }
                if !self.safety_engaged {
                    self.ring.set_mode(LedMode::Navigation);
                    self.emit(DroneEvent::LightsNavigation);
                }
            }
            _ => {
                if !self.state.rotors_on {
                    self.emit(DroneEvent::SafetyTriggered(
                        "pattern commanded while grounded".into(),
                    ));
                    return;
                }
            }
        }
        let traj = self
            .executor
            .generate(pattern, self.state.position, self.state.heading);
        self.emit(DroneEvent::PatternStarted(pattern.kind()));
        self.executing = Some((pattern, traj, 0.0));
        self.waypoint = None;
    }

    /// Commands a free transit to a waypoint (controller + kinematics).
    pub fn goto(&mut self, target: Vec3) {
        self.waypoint = Some(target);
        self.executing = None;
    }

    /// Fires a safety function: all-red ring immediately, abort whatever is
    /// executing, and land on the spot (the paper's safety posture).
    pub fn trigger_safety(&mut self, reason: impl Into<String>) {
        self.safety_engaged = true;
        self.ring.set_mode(LedMode::Danger);
        self.emit(DroneEvent::LightsDanger);
        self.emit(DroneEvent::SafetyTriggered(reason.into()));
        self.waypoint = None;
        if self.state.rotors_on && !self.state.is_grounded() {
            let traj = self.executor.generate(
                FlightPattern::Landing,
                self.state.position,
                self.state.heading,
            );
            self.executing = Some((FlightPattern::Landing, traj, 0.0));
            self.emit(DroneEvent::PatternStarted(PatternKind::Landing));
        }
    }

    /// Resets a latched safety state (allowed only on the ground with the
    /// rotors stopped).
    ///
    /// Returns whether the reset was accepted.
    pub fn reset_safety(&mut self) -> bool {
        if self.state.is_grounded() && !self.state.rotors_on {
            self.safety_engaged = false;
            true
        } else {
            false
        }
    }

    fn finish_landing(&mut self) {
        // Figure 2 ordering: rotors off first, only then lights out.
        if self.state.rotors_on {
            self.state.rotors_on = false;
            self.emit(DroneEvent::RotorsStopped);
        }
        if self.ring.mode() != LedMode::Danger || !self.safety_engaged {
            self.ring.set_mode(LedMode::Off);
            self.emit(DroneEvent::LightsOut);
        }
    }

    /// Advances the simulation by `dt` seconds.
    ///
    /// # Panics
    /// Panics if `dt` is not positive.
    pub fn tick(&mut self, dt: f64) {
        assert!(dt > 0.0, "time step must be positive");
        self.time += dt;

        // --- motion ---
        if let Some((pattern, traj, progress)) = self.executing.take() {
            let new_progress = progress + dt;
            // scripted playback: look up the pose at new_progress; derive
            // velocity from the position delta so sensors (IMU) and the
            // battery model see the true motion
            let pose = sample_at(&traj, new_progress);
            let prev = self.state.position;
            self.state.position = pose.position;
            self.state.heading = pose.heading;
            self.state.velocity = (pose.position - prev) / dt;
            if new_progress >= traj.duration() {
                self.emit(DroneEvent::PatternComplete(pattern.kind()));
                if matches!(pattern, FlightPattern::Landing) {
                    self.finish_landing();
                }
            } else {
                self.executing = Some((pattern, traj, new_progress));
            }
        } else if let Some(target) = self.waypoint {
            let wind = self.config.wind.sample(self.time, &mut self.rng);
            let v = self.config.controller.velocity_command(&self.state, target);
            let h = self.config.controller.heading_command(&self.state, target);
            self.kinematics.step(&mut self.state, v, h, wind, dt);
            if self.config.controller.arrived(&self.state, target) {
                self.waypoint = None;
            }
        }

        // --- energy ---
        let brightness = if self.ring.mode() == LedMode::Off {
            0.0
        } else {
            self.ring.brightness
        };
        let was_reserve = self.battery.below_reserve();
        self.battery.drain(
            dt,
            self.state.velocity.norm(),
            self.state.rotors_on,
            brightness,
        );
        if !was_reserve && self.battery.below_reserve() {
            self.emit(DroneEvent::BatteryReserve);
            self.trigger_safety("battery below reserve");
        }

        // --- trace ---
        self.trace.push(TimedPose {
            t: self.time,
            position: self.state.position,
            heading: self.state.heading,
        });
    }

    /// Advances time and energy by `dt` seconds without simulating motion.
    ///
    /// The event-driven scheduler calls this to coalesce idle spans — no
    /// pattern executing and no waypoint pending — into one jump. The power
    /// draw of an idle drone is constant, so one `coast(dt)` drains what `n`
    /// idle `tick(dt / n)` calls would (up to float summation order); the
    /// observable differences are the skipped per-tick trace samples (the
    /// trace is only classified over pattern flights, which never coast) and
    /// a reserve crossing detected at the end of the span instead of
    /// mid-span.
    ///
    /// # Panics
    /// Panics if `dt` is not positive, or if called while a pattern or
    /// waypoint transit is active (those need true ticks).
    pub fn coast(&mut self, dt: f64) {
        assert!(dt > 0.0, "time step must be positive");
        assert!(
            self.executing.is_none() && self.waypoint.is_none(),
            "coast is only valid while idle"
        );
        self.time += dt;
        let brightness = if self.ring.mode() == LedMode::Off {
            0.0
        } else {
            self.ring.brightness
        };
        let was_reserve = self.battery.below_reserve();
        self.battery.drain(
            dt,
            self.state.velocity.norm(),
            self.state.rotors_on,
            brightness,
        );
        if !was_reserve && self.battery.below_reserve() {
            self.emit(DroneEvent::BatteryReserve);
            self.trigger_safety("battery below reserve");
        }
    }
}

/// Interpolated pose lookup on a trajectory at time `t` (clamped to ends).
fn sample_at(traj: &Trajectory, t: f64) -> TimedPose {
    let s = traj.samples();
    debug_assert!(!s.is_empty(), "pattern trajectories are never empty");
    if t <= s[0].t {
        return s[0];
    }
    if t >= s[s.len() - 1].t {
        return s[s.len() - 1];
    }
    let idx = s.partition_point(|p| p.t < t);
    let a = s[idx - 1];
    let b = s[idx];
    let span = b.t - a.t;
    let frac = if span > 0.0 { (t - a.t) / span } else { 0.0 };
    TimedPose {
        t,
        position: a.position.lerp(b.position, frac),
        heading: a.heading + hdc_geometry::signed_angle_diff(a.heading, b.heading) * frac,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::led::LedColor;
    use crate::patterns::PatternClassifier;
    use hdc_geometry::Vec2;

    fn run_until_idle(drone: &mut Drone, max_s: f64) {
        let mut t = 0.0;
        while drone.is_executing() && t < max_s {
            drone.tick(0.05);
            t += 0.05;
        }
        assert!(t < max_s, "pattern did not finish in {max_s} s");
    }

    fn airborne() -> Drone {
        let mut d = Drone::new(DroneConfig::default());
        d.execute_pattern(FlightPattern::TakeOff {
            target_altitude: 5.0,
        });
        run_until_idle(&mut d, 30.0);
        d.drain_events();
        d.take_trace();
        d
    }

    #[test]
    fn takeoff_sequence() {
        let mut d = Drone::new(DroneConfig::default());
        assert_eq!(d.ring().mode(), LedMode::Danger, "fail-safe default");
        d.execute_pattern(FlightPattern::TakeOff {
            target_altitude: 3.0,
        });
        run_until_idle(&mut d, 30.0);
        assert!((d.state().position.z - 3.0).abs() < 0.1);
        let events = d.drain_events();
        assert!(events.contains(&DroneEvent::RotorsStarted));
        assert!(events.contains(&DroneEvent::LightsNavigation));
        assert!(events.contains(&DroneEvent::PatternComplete(PatternKind::TakeOff)));
        assert_eq!(d.ring().mode(), LedMode::Navigation);
    }

    #[test]
    fn landing_extinguishes_lights_after_rotors() {
        let mut d = airborne();
        d.execute_pattern(FlightPattern::Landing);
        run_until_idle(&mut d, 30.0);
        assert!(d.state().is_grounded());
        assert!(!d.state().rotors_on);
        assert_eq!(d.ring().mode(), LedMode::Off);
        let events = d.drain_events();
        let rotors_idx = events
            .iter()
            .position(|e| *e == DroneEvent::RotorsStopped)
            .unwrap();
        let lights_idx = events
            .iter()
            .position(|e| *e == DroneEvent::LightsOut)
            .unwrap();
        assert!(
            rotors_idx < lights_idx,
            "Figure 2: rotors stop, then lights out"
        );
    }

    #[test]
    fn grounded_pattern_rejected() {
        let mut d = Drone::new(DroneConfig::default());
        d.execute_pattern(FlightPattern::Nod);
        assert!(!d.is_executing());
        let events = d.drain_events();
        assert!(matches!(
            events.first(),
            Some(DroneEvent::SafetyTriggered(_))
        ));
    }

    #[test]
    fn safety_trigger_forces_red_and_landing() {
        let mut d = airborne();
        d.execute_pattern(FlightPattern::Nod);
        d.tick(0.1);
        d.trigger_safety("human too close");
        assert_eq!(d.ring().mode(), LedMode::Danger);
        assert!(d.safety_engaged());
        run_until_idle(&mut d, 30.0);
        assert!(d.state().is_grounded());
        // danger stays latched on the ring (no LightsOut downgrade)
        assert_eq!(d.ring().mode(), LedMode::Danger);
        assert!(!d.reset_safety() || d.state().is_grounded());
        assert!(d.reset_safety(), "reset allowed once grounded");
    }

    #[test]
    fn observer_reads_executed_patterns() {
        let classifier = PatternClassifier::default();
        for p in [
            FlightPattern::Nod,
            FlightPattern::Turn,
            FlightPattern::Poke { toward: Vec2::Y },
            FlightPattern::RectangleRequest {
                half_width: 2.0,
                half_depth: 1.5,
            },
        ] {
            let mut d = airborne();
            d.execute_pattern(p);
            run_until_idle(&mut d, 60.0);
            let trace = d.take_trace();
            assert_eq!(
                classifier.classify(&trace),
                Some(p.kind()),
                "{:?}",
                p.kind()
            );
        }
    }

    #[test]
    fn waypoint_transit_with_kinematics() {
        let mut d = airborne();
        let target = Vec3::new(15.0, -8.0, 5.0);
        d.goto(target);
        let mut t = 0.0;
        while d.state().position.distance(target) > 0.3 && t < 60.0 {
            d.tick(0.05);
            t += 0.05;
        }
        assert!(
            d.state().position.distance(target) <= 0.3,
            "arrived in {t} s"
        );
        // the transit trace reads as a cruise
        let classifier = PatternClassifier::default();
        assert_eq!(classifier.classify(d.trace()), Some(PatternKind::Cruise));
    }

    #[test]
    fn battery_drains_while_flying() {
        let mut d = airborne();
        let soc0 = d.battery().state_of_charge();
        for _ in 0..200 {
            d.tick(0.05);
        }
        assert!(d.battery().state_of_charge() < soc0);
    }

    #[test]
    fn ring_observer_color_during_flight() {
        let d = airborne();
        // navigation mode: port observer sees red
        let c = d.ring().color_toward(
            d.state().heading,
            d.state().heading + std::f64::consts::FRAC_PI_2,
        );
        assert_eq!(c, LedColor::Red);
    }

    #[test]
    fn coast_drains_like_idle_ticks_and_latches_reserve() {
        // Same hover, same span: one coast vs. a hundred idle ticks.
        let mut ticked = airborne();
        let mut coasted = ticked.clone();
        for _ in 0..100 {
            ticked.tick(0.1);
        }
        coasted.coast(10.0);
        let a = ticked.battery().state_of_charge();
        let b = coasted.battery().state_of_charge();
        assert!((a - b).abs() < 1e-9, "drain must coalesce: {a} vs {b}");
        assert!((ticked.time() - coasted.time()).abs() < 1e-9);
        // trace is the one permitted divergence: coast records nothing
        assert!(coasted.trace().samples().is_empty());

        // a coast across the reserve threshold still fires the failsafe
        let mut sagging = airborne();
        sagging.drain_events();
        sagging.coast(3600.0 * 24.0);
        assert!(sagging.battery().below_reserve());
        assert!(sagging.safety_engaged());
        assert!(sagging.drain_events().contains(&DroneEvent::BatteryReserve));
    }

    #[test]
    #[should_panic(expected = "only valid while idle")]
    fn coast_rejects_active_patterns() {
        let mut d = airborne();
        d.execute_pattern(FlightPattern::Nod);
        d.coast(1.0);
    }

    #[test]
    fn events_drain_once() {
        let mut d = Drone::new(DroneConfig::default());
        d.execute_pattern(FlightPattern::TakeOff {
            target_altitude: 1.0,
        });
        let first = d.drain_events();
        assert!(!first.is_empty());
        assert!(d.drain_events().is_empty());
    }
}
