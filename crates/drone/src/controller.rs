//! Waypoint controller: proportional velocity command toward a target.

use crate::kinematics::DroneState;
use hdc_geometry::Vec3;
use serde::{Deserialize, Serialize};

/// A proportional controller producing velocity commands toward a waypoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointController {
    /// Proportional gain (1/s): commanded speed per metre of error.
    pub gain: f64,
    /// Cruise speed cap, m/s.
    pub cruise_speed: f64,
    /// Arrival radius, metres.
    pub arrival_radius: f64,
}

impl WaypointController {
    /// A controller with sensible defaults for orchard work.
    pub fn new() -> Self {
        WaypointController {
            gain: 1.2,
            cruise_speed: 5.0,
            arrival_radius: 0.25,
        }
    }

    /// Velocity command to move from the current state toward `target`.
    ///
    /// Inside the arrival radius the command is zero (hover).
    pub fn velocity_command(&self, state: &DroneState, target: Vec3) -> Vec3 {
        let err = target - state.position;
        if err.norm() <= self.arrival_radius {
            return Vec3::ZERO;
        }
        let cmd = err * self.gain;
        if cmd.norm() > self.cruise_speed {
            cmd.normalized().expect("non-zero error") * self.cruise_speed
        } else {
            cmd
        }
    }

    /// Heading command: face the direction of horizontal travel, or keep the
    /// current heading when stationary over the target.
    pub fn heading_command(&self, state: &DroneState, target: Vec3) -> f64 {
        let err = (target - state.position).xy();
        if err.norm() <= self.arrival_radius {
            state.heading
        } else {
            err.angle()
        }
    }

    /// Whether the state has arrived at the target.
    pub fn arrived(&self, state: &DroneState, target: Vec3) -> bool {
        state.position.distance(target) <= self.arrival_radius
    }
}

impl Default for WaypointController {
    fn default() -> Self {
        WaypointController::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinematics::{Kinematics, KinematicsLimits};

    #[test]
    fn command_points_at_target() {
        let c = WaypointController::new();
        let s = DroneState {
            position: Vec3::ZERO,
            velocity: Vec3::ZERO,
            heading: 0.0,
            rotors_on: true,
        };
        let cmd = c.velocity_command(&s, Vec3::new(10.0, 0.0, 0.0));
        assert!(cmd.x > 0.0);
        assert!(cmd.y.abs() < 1e-12 && cmd.z.abs() < 1e-12);
        assert!(
            (cmd.norm() - c.cruise_speed).abs() < 1e-9,
            "far target → cruise speed"
        );
    }

    #[test]
    fn command_slows_near_target() {
        let c = WaypointController::new();
        let s = DroneState {
            position: Vec3::new(9.5, 0.0, 0.0),
            velocity: Vec3::ZERO,
            heading: 0.0,
            rotors_on: true,
        };
        let cmd = c.velocity_command(&s, Vec3::new(10.0, 0.0, 0.0));
        assert!(cmd.norm() < c.cruise_speed, "proportional slow-down");
        assert!(cmd.norm() > 0.0);
    }

    #[test]
    fn hover_inside_radius() {
        let c = WaypointController::new();
        let s = DroneState {
            position: Vec3::new(10.0, 0.1, 0.0),
            velocity: Vec3::ZERO,
            heading: 0.7,
            rotors_on: true,
        };
        let t = Vec3::new(10.0, 0.0, 0.0);
        assert_eq!(c.velocity_command(&s, t), Vec3::ZERO);
        assert_eq!(c.heading_command(&s, t), 0.7, "keep heading when arrived");
        assert!(c.arrived(&s, t));
    }

    #[test]
    fn closed_loop_reaches_waypoint() {
        let c = WaypointController::new();
        let k = Kinematics::new(KinematicsLimits::default());
        let mut s = DroneState {
            position: Vec3::new(0.0, 0.0, 3.0),
            velocity: Vec3::ZERO,
            heading: 0.0,
            rotors_on: true,
        };
        let target = Vec3::new(12.0, -7.0, 5.0);
        let mut t = 0.0;
        while !c.arrived(&s, target) && t < 60.0 {
            let v = c.velocity_command(&s, target);
            let h = c.heading_command(&s, target);
            k.step(&mut s, v, h, Vec3::ZERO, 0.05);
            t += 0.05;
        }
        assert!(c.arrived(&s, target), "did not arrive in {t} s");
        assert!(t < 20.0, "took {t} s");
    }

    #[test]
    fn heading_faces_travel_direction() {
        let c = WaypointController::new();
        let s = DroneState {
            position: Vec3::ZERO,
            velocity: Vec3::ZERO,
            heading: 0.0,
            rotors_on: true,
        };
        let h = c.heading_command(&s, Vec3::new(0.0, 5.0, 0.0));
        assert!((h - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }
}
