//! RGB status signalling for take-off/landing — the paper's proposed
//! replacement for the discarded vertical array.
//!
//! Paper, Section II: *"Since in vertical take-off/landing situations
//! directional lights are not necessary, a combination of RGB light signals
//! may be used to indicate these flight patterns, this is left for further
//! work."* This module does that further work: a colour-coded status signal
//! whose reading is **order-free** — an observer needs any single clean
//! glance, not a correctly-ordered sequence of glances — which removes the
//! phase-aliasing failure that sank the vertical array (experiments E9/E13).

use crate::led::VerticalAnimation;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The hue the whole ring pulses with during a vertical manoeuvre.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatusHue {
    /// Pulsing green: taking off (leaving the ground, gaining energy).
    TakeOffGreen,
    /// Pulsing amber: landing (coming down — caution near ground).
    LandingAmber,
}

impl fmt::Display for StatusHue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StatusHue::TakeOffGreen => "pulsing green (take-off)",
            StatusHue::LandingAmber => "pulsing amber (landing)",
        };
        f.write_str(s)
    }
}

impl StatusHue {
    /// The hue encoding a vertical animation's meaning.
    pub fn for_animation(anim: VerticalAnimation) -> StatusHue {
        match anim {
            VerticalAnimation::TakeOff => StatusHue::TakeOffGreen,
            VerticalAnimation::Landing => StatusHue::LandingAmber,
        }
    }

    /// The meaning of the hue.
    pub fn animation(&self) -> VerticalAnimation {
        match self {
            StatusHue::TakeOffGreen => VerticalAnimation::TakeOff,
            StatusHue::LandingAmber => VerticalAnimation::Landing,
        }
    }
}

/// The RGB status signal: the ring pulses a single hue at `pulse_hz`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RgbStatusSignal {
    hue: StatusHue,
    /// Pulse frequency, Hz (brightness modulation — attention without
    /// encoding information in the temporal order).
    pub pulse_hz: f64,
}

impl RgbStatusSignal {
    /// Creates the signal for a manoeuvre.
    pub fn new(hue: StatusHue) -> Self {
        RgbStatusSignal { hue, pulse_hz: 2.0 }
    }

    /// Convenience: signal matching a vertical animation.
    pub fn for_animation(anim: VerticalAnimation) -> Self {
        RgbStatusSignal::new(StatusHue::for_animation(anim))
    }

    /// The encoded hue.
    pub fn hue(&self) -> StatusHue {
        self.hue
    }

    /// Brightness at time `t`, in `[0.3, 1.0]` (never fully dark — the hue
    /// stays readable at any instant).
    pub fn brightness(&self, t: f64) -> f64 {
        0.65 + 0.35 * (std::f64::consts::TAU * self.pulse_hz * t).sin()
    }

    /// Observer model (the E13 counterpart of
    /// [`crate::VerticalArray::observe_direction`]): takes `samples` glances,
    /// each independently misread with probability `misread_prob` (the same
    /// corruption budget as the array's per-LED flips), and majority-votes
    /// the hue. Returns `None` on a tie or when every glance failed.
    pub fn observe_hue<R: Rng>(
        &self,
        samples: usize,
        misread_prob: f64,
        rng: &mut R,
    ) -> Option<StatusHue> {
        let mut votes: i32 = 0;
        for _ in 0..samples {
            let seen = if rng.gen::<f64>() < misread_prob {
                // a misread glance returns the *other* hue
                match self.hue {
                    StatusHue::TakeOffGreen => StatusHue::LandingAmber,
                    StatusHue::LandingAmber => StatusHue::TakeOffGreen,
                }
            } else {
                self.hue
            };
            votes += match seen {
                StatusHue::TakeOffGreen => 1,
                StatusHue::LandingAmber => -1,
            };
        }
        match votes.cmp(&0) {
            std::cmp::Ordering::Greater => Some(StatusHue::TakeOffGreen),
            std::cmp::Ordering::Less => Some(StatusHue::LandingAmber),
            std::cmp::Ordering::Equal => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn hue_animation_bijection() {
        for anim in [VerticalAnimation::TakeOff, VerticalAnimation::Landing] {
            assert_eq!(StatusHue::for_animation(anim).animation(), anim);
        }
    }

    #[test]
    fn brightness_pulses_but_never_dark() {
        let s = RgbStatusSignal::new(StatusHue::TakeOffGreen);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..100 {
            let b = s.brightness(i as f64 * 0.01);
            lo = lo.min(b);
            hi = hi.max(b);
        }
        assert!(lo >= 0.3 - 1e-9, "minimum brightness {lo}");
        assert!(hi <= 1.0 + 1e-9);
        assert!(hi - lo > 0.5, "visible pulsing");
    }

    #[test]
    fn clean_observation_exact() {
        let mut rng = SmallRng::seed_from_u64(1);
        for hue in [StatusHue::TakeOffGreen, StatusHue::LandingAmber] {
            let s = RgbStatusSignal::new(hue);
            assert_eq!(s.observe_hue(3, 0.0, &mut rng), Some(hue));
        }
    }

    #[test]
    fn majority_vote_beats_per_glance_noise() {
        // with 30% misreads, 3 glances give ~0.784 majority-correct; 200
        // trials must comfortably beat chance (the array inverts here, E9)
        let mut rng = SmallRng::seed_from_u64(2);
        let s = RgbStatusSignal::new(StatusHue::LandingAmber);
        let trials = 400;
        let correct = (0..trials)
            .filter(|_| s.observe_hue(3, 0.3, &mut rng) == Some(StatusHue::LandingAmber))
            .count();
        let acc = correct as f64 / trials as f64;
        assert!(acc > 0.7, "colour reading accuracy {acc}");
    }

    #[test]
    fn display() {
        assert_eq!(
            StatusHue::TakeOffGreen.to_string(),
            "pulsing green (take-off)"
        );
    }
}
