//! Wind disturbance model.
//!
//! Section III: the standard patterns "only vary if the drone is somehow
//! defective or, for instance, caught in wind gusts". The wind model lets
//! the experiments inject exactly that disturbance and measure when pattern
//! legibility breaks down.

use hdc_geometry::Vec3;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mean wind plus sinusoidal gusting with random phase noise — a cheap
/// stand-in for a Dryden-style turbulence model that still produces
/// correlated, bounded gusts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindModel {
    /// Steady wind vector, m/s.
    pub mean: Vec3,
    /// Peak gust amplitude added on top of the mean, m/s.
    pub gust_amplitude: f64,
    /// Gust period, seconds.
    pub gust_period: f64,
}

impl WindModel {
    /// Dead calm.
    pub fn calm() -> Self {
        WindModel {
            mean: Vec3::ZERO,
            gust_amplitude: 0.0,
            gust_period: 1.0,
        }
    }

    /// A steady breeze along `direction` (normalised internally) at
    /// `speed` m/s with `gust_amplitude` m/s gusts.
    pub fn breeze(direction: Vec3, speed: f64, gust_amplitude: f64) -> Self {
        let dir = direction.normalized().unwrap_or(Vec3::X);
        WindModel {
            mean: dir * speed,
            gust_amplitude,
            gust_period: 4.0,
        }
    }

    /// Samples the wind at time `t`; `rng` adds phase jitter so two runs
    /// differ while the spectrum stays bounded.
    pub fn sample<R: Rng>(&self, t: f64, rng: &mut R) -> Vec3 {
        if self.gust_amplitude <= 0.0 {
            return self.mean;
        }
        let phase = std::f64::consts::TAU * t / self.gust_period;
        let jitter: f64 = rng.gen_range(-0.3..0.3);
        let gust = (phase + jitter).sin() * self.gust_amplitude;
        let dir = self.mean.normalized().unwrap_or(Vec3::X);
        self.mean + dir * gust
    }

    /// The worst-case wind speed this model can produce.
    pub fn max_speed(&self) -> f64 {
        self.mean.norm() + self.gust_amplitude
    }
}

impl Default for WindModel {
    fn default() -> Self {
        WindModel::calm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn calm_is_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = WindModel::calm();
        assert_eq!(w.sample(3.0, &mut rng), Vec3::ZERO);
        assert_eq!(w.max_speed(), 0.0);
    }

    #[test]
    fn breeze_points_downwind() {
        let w = WindModel::breeze(Vec3::new(0.0, 2.0, 0.0), 3.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let s = w.sample(0.0, &mut rng);
        assert!((s.y - 3.0).abs() < 1e-9);
        assert!(s.x.abs() < 1e-9);
    }

    #[test]
    fn gusts_bounded_by_max_speed() {
        let w = WindModel::breeze(Vec3::X, 4.0, 2.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..500 {
            let s = w.sample(i as f64 * 0.1, &mut rng);
            assert!(s.norm() <= w.max_speed() + 1e-9);
        }
    }

    #[test]
    fn gusts_actually_vary() {
        let w = WindModel::breeze(Vec3::X, 4.0, 2.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let a = w.sample(0.0, &mut rng);
        let b = w.sample(1.0, &mut rng);
        assert!((a - b).norm() > 0.1);
    }

    #[test]
    fn zero_direction_defaults_east() {
        let w = WindModel::breeze(Vec3::ZERO, 2.0, 0.0);
        assert!((w.mean.x - 2.0).abs() < 1e-9);
    }
}
