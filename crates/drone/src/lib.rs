//! Drone simulation substrate for the `hdc` workspace.
//!
//! The paper's drone→human channel is *embodied*: an all-round LED ring
//! (Figure 1) plus defined, observable flight patterns (Figure 2 and the
//! four communicative patterns of Section III). We have no Yuneec H520, so
//! this crate simulates the drone:
//!
//! * [`DroneState`] + point-mass [`Kinematics`] with acceleration limits,
//! * a proportional [`WaypointController`],
//! * gusty [`WindModel`] and [`BatteryModel`] disturbances,
//! * the seven [`FlightPattern`]s with an analytic [`PatternExecutor`]
//!   producing [`Trajectory`] traces,
//! * a [`PatternClassifier`] — the *human observer model* that reads a
//!   trajectory back into a pattern (the legibility requirement:
//!   "unmistakable flight patterns ... an embodied statement of intent"),
//! * the [`LedRing`] (10 tri-colour LEDs, FAA-style navigation colours,
//!   all-red danger default) and the discarded [`VerticalArray`] with the
//!   observer confusion study of experiment E9,
//! * a [`Drone`] facade tying state, control, signalling and energy
//!   together.
//!
//! # Example
//! ```
//! use hdc_drone::{Drone, DroneConfig, FlightPattern};
//! let mut drone = Drone::new(DroneConfig::default());
//! drone.execute_pattern(FlightPattern::TakeOff { target_altitude: 3.0 });
//! while drone.is_executing() {
//!     drone.tick(0.05);
//! }
//! assert!((drone.state().position.z - 3.0).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
mod controller;
mod drone;
mod imu;
mod kinematics;
mod led;
mod patterns;
mod rgb_status;
mod wind;

pub use battery::BatteryModel;
pub use controller::WaypointController;
pub use drone::{Drone, DroneConfig, DroneEvent};
pub use imu::{Barometer, FlightState, FlightStateEstimator, Imu, ImuSample, GRAVITY};
pub use kinematics::{DroneState, Kinematics, KinematicsLimits};
pub use led::{
    LedColor, LedMode, LedRing, RingSnapshot, VerticalAnimation, VerticalArray, RING_LED_COUNT,
};
pub use patterns::{
    FlightPattern, PatternClassifier, PatternExecutor, PatternKind, TimedPose, Trajectory,
};
pub use rgb_status::{RgbStatusSignal, StatusHue};
pub use wind::WindModel;
