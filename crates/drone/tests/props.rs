//! Property-based tests for the drone substrate.

use hdc_drone::{
    DroneState, FlightPattern, FlightStateEstimator, ImuSample, Kinematics, KinematicsLimits,
    LedColor, LedMode, LedRing, PatternClassifier, PatternExecutor, GRAVITY,
};
use hdc_geometry::{Vec2, Vec3};
use proptest::prelude::*;

fn any_pattern() -> impl Strategy<Value = FlightPattern> {
    prop_oneof![
        (1.0f64..8.0).prop_map(|a| FlightPattern::TakeOff { target_altitude: a }),
        Just(FlightPattern::Landing),
        (3.0f64..30.0, -20.0f64..20.0).prop_map(|(x, y)| FlightPattern::Cruise {
            to: Vec3::new(x, y, 5.0)
        }),
        (-3.0f64..3.0, -3.0f64..3.0)
            .prop_filter("non-zero direction", |(x, y)| x.abs() + y.abs() > 0.1)
            .prop_map(|(x, y)| FlightPattern::Poke {
                toward: Vec2::new(x, y)
            }),
        Just(FlightPattern::Nod),
        Just(FlightPattern::Turn),
        (0.8f64..3.0, 0.8f64..3.0).prop_map(|(w, d)| FlightPattern::RectangleRequest {
            half_width: w,
            half_depth: d
        }),
    ]
}

proptest! {
    #[test]
    fn every_pattern_is_legible(pattern in any_pattern(), heading in -3.0f64..3.0) {
        let exec = PatternExecutor::default();
        let start = match pattern {
            FlightPattern::TakeOff { .. } => Vec3::ZERO,
            _ => Vec3::new(0.0, 0.0, 5.0),
        };
        let traj = exec.generate(pattern, start, heading);
        let got = PatternClassifier::default().classify(&traj);
        prop_assert_eq!(got, Some(pattern.kind()));
    }

    #[test]
    fn trajectories_are_finite_and_timed(pattern in any_pattern()) {
        let exec = PatternExecutor::default();
        let start = Vec3::new(1.0, 2.0, 4.0);
        let traj = exec.generate(pattern, start, 0.5);
        prop_assert!(!traj.is_empty());
        prop_assert!(traj.duration() >= 0.0);
        let mut prev_t = f64::NEG_INFINITY;
        for p in traj.samples() {
            prop_assert!(p.position.is_finite());
            prop_assert!(p.heading.is_finite());
            prop_assert!(p.t >= prev_t, "time must be monotone");
            prev_t = p.t;
            prop_assert!(p.position.z >= -1e-9, "never underground");
        }
    }

    #[test]
    fn kinematics_respects_limits(
        cmds in prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0, -5.0f64..5.0), 1..80),
        dt in 0.01f64..0.2,
    ) {
        let limits = KinematicsLimits::default();
        let k = Kinematics::new(limits);
        let mut s = DroneState {
            position: Vec3::new(0.0, 0.0, 5.0),
            velocity: Vec3::ZERO,
            heading: 0.0,
            rotors_on: true,
        };
        for (vx, vy, vz) in cmds {
            let prev_v = s.velocity;
            k.step(&mut s, Vec3::new(vx, vy, vz), 1.0, Vec3::ZERO, dt);
            // acceleration limit — except at ground contact, where the
            // impulsive normal force legitimately zeroes the sink rate
            let touched_down = s.position.z == 0.0 && prev_v.z < 0.0;
            if !touched_down {
                let dv = (s.velocity - prev_v).norm();
                prop_assert!(dv <= limits.max_accel * dt + 1e-9);
            }
            // vertical speed limit (horizontal cap is on the command)
            prop_assert!(s.velocity.z.abs() <= limits.max_vertical_speed + 1e-9);
            prop_assert!(s.position.z >= 0.0);
        }
    }

    #[test]
    fn navigation_ring_covers_all_bearings(heading in -7.0f64..7.0, bearing in -7.0f64..7.0) {
        let ring = LedRing::new(LedMode::Navigation);
        let c = ring.color_toward(heading, bearing);
        prop_assert!(matches!(c, LedColor::Red | LedColor::Green | LedColor::White));
        // danger overrides everything
        let danger = LedRing::new(LedMode::Danger);
        prop_assert_eq!(danger.color_toward(heading, bearing), LedColor::Red);
    }

    #[test]
    fn ring_sides_are_consistent(heading in -7.0f64..7.0) {
        // port (left, +90° bearing offset) is red-ish, starboard green-ish
        let ring = LedRing::new(LedMode::Navigation);
        let port = ring.color_toward(heading, heading + std::f64::consts::FRAC_PI_2);
        let starboard = ring.color_toward(heading, heading - std::f64::consts::FRAC_PI_2);
        prop_assert_eq!(port, LedColor::Red);
        prop_assert_eq!(starboard, LedColor::Green);
    }

    #[test]
    fn estimator_never_panics_and_grounds_on_rotors_off(
        samples in prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0, -30.0f64..30.0), 1..60),
    ) {
        let mut est = FlightStateEstimator::new();
        for (ax, ay, az) in samples {
            let s = ImuSample { accel: Vec3::new(ax, ay, az + GRAVITY), yaw_rate: 0.0 };
            let state = est.update(&s, false, 0.05);
            prop_assert_eq!(state, hdc_drone::FlightState::Grounded);
        }
    }
}
