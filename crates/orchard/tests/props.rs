//! Property-based tests for the orchard simulation.

use hdc_geometry::Vec2;
use hdc_orchard::{
    run_fleet, EventQueue, FleetConfig, Mission, MissionConfig, OrchardMap, ScheduledEvent,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0f64..1000.0, 1..50)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(*t, ScheduledEvent::VisitTrap(i as u32));
        }
        prop_assert_eq!(q.len(), times.len());
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev, "queue must pop in time order");
            prev = t;
        }
    }

    #[test]
    fn tour_is_a_permutation(rows in 1u32..6, cols in 1u32..6, sx in 1.0f64..8.0, sy in 1.0f64..8.0) {
        let map = OrchardMap::grid(rows, cols, sx, sy);
        let tour = map.plan_tour(Vec2::ZERO);
        let n = (rows * cols) as usize;
        prop_assert_eq!(tour.len(), n);
        let mut seen = vec![false; n];
        for id in tour {
            prop_assert!(!seen[id as usize], "trap visited twice");
            seen[id as usize] = true;
        }
    }

    #[test]
    fn missions_account_for_every_trap(
        rows in 1u32..4,
        cols in 1u32..4,
        people in 0u32..6,
        seed in 0u64..50,
    ) {
        let map = OrchardMap::grid(rows, cols, 4.0, 3.0);
        let cfg = MissionConfig { human_count: people, ..Default::default() };
        let stats = Mission::new(cfg, map, seed).run();
        prop_assert_eq!(stats.traps_read + stats.traps_skipped, rows * cols);
        prop_assert!(stats.mission_time_s > 0.0);
        prop_assert!(stats.energy_wh > 0.0);
        prop_assert!(stats.negotiations.grant_rate() >= 0.0);
        prop_assert!(stats.negotiations.grant_rate() <= 1.0);
    }

    #[test]
    fn missions_are_deterministic(seed in 0u64..30) {
        let run = || {
            let map = OrchardMap::grid(3, 3, 4.0, 3.0);
            let cfg = MissionConfig { human_count: 3, ..Default::default() };
            Mission::new(cfg, map, seed).run()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn fleets_cover_every_trap(drones in 1u32..6, seed in 0u64..20) {
        let map = OrchardMap::grid(3, 4, 4.0, 3.0);
        let mission = MissionConfig { human_count: 0, ..Default::default() };
        let stats = run_fleet(FleetConfig { drone_count: drones, mission }, &map, seed);
        prop_assert_eq!(stats.traps_read, 12);
        prop_assert!(stats.makespan_s > 0.0);
        prop_assert!(stats.per_drone.len() <= drones as usize);
    }
}
