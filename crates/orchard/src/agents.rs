//! Human actors moving through the orchard.

use hdc_core::Role;
use hdc_geometry::Vec2;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A human working in (or visiting) the orchard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HumanActor {
    /// Actor id.
    pub id: u32,
    /// Their role (training level).
    pub role: Role,
    /// Current ground position.
    pub position: Vec2,
    /// Current walking target.
    target: Vec2,
    /// Walking speed, m/s.
    pub speed: f64,
    /// Whether this person would consent to an area request right now.
    pub will_consent: bool,
}

impl HumanActor {
    /// Creates an actor at a position.
    pub fn new(id: u32, role: Role, position: Vec2) -> Self {
        HumanActor {
            id,
            role,
            position,
            target: position,
            speed: 1.2,
            will_consent: true,
        }
    }

    /// Whether the actor has reached its current target.
    pub fn is_idle(&self) -> bool {
        self.position.distance(self.target) < 0.2
    }

    /// Sets a new walking target.
    pub fn walk_to(&mut self, target: Vec2) {
        self.target = target;
    }

    /// Picks a random target within the given bounds.
    pub fn replan<R: Rng>(&mut self, lo: Vec2, hi: Vec2, rng: &mut R) {
        self.target = Vec2::new(rng.gen_range(lo.x..=hi.x), rng.gen_range(lo.y..=hi.y));
        // workers change their mind about consenting now and then
        self.will_consent = rng.gen::<f64>() < 0.8;
    }

    /// Advances the walk by `dt` seconds.
    pub fn step(&mut self, dt: f64) {
        let to_target = self.target - self.position;
        let dist = to_target.norm();
        if dist < 1e-9 {
            return;
        }
        let step = (self.speed * dt).min(dist);
        self.position += to_target / dist * step;
    }

    /// Whether the actor blocks access to a point (is within `radius` of it).
    pub fn blocks(&self, point: Vec2, radius: f64) -> bool {
        self.position.distance(point) <= radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn walks_toward_target() {
        let mut h = HumanActor::new(0, Role::Worker, Vec2::ZERO);
        h.walk_to(Vec2::new(10.0, 0.0));
        assert!(!h.is_idle());
        h.step(1.0);
        assert!((h.position.x - 1.2).abs() < 1e-9);
        for _ in 0..20 {
            h.step(1.0);
        }
        assert!(h.is_idle());
        assert!((h.position.x - 10.0).abs() < 1e-9, "does not overshoot");
    }

    #[test]
    fn replan_stays_in_bounds() {
        let mut h = HumanActor::new(1, Role::Visitor, Vec2::ZERO);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            h.replan(Vec2::new(-5.0, -5.0), Vec2::new(5.0, 5.0), &mut rng);
            for _ in 0..100 {
                h.step(0.5);
            }
            assert!(h.position.x >= -5.0 - 1e-9 && h.position.x <= 5.0 + 1e-9);
            assert!(h.position.y >= -5.0 - 1e-9 && h.position.y <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn blocking_radius() {
        let h = HumanActor::new(2, Role::Supervisor, Vec2::new(1.0, 1.0));
        assert!(h.blocks(Vec2::new(1.5, 1.0), 1.0));
        assert!(!h.blocks(Vec2::new(3.0, 1.0), 1.0));
    }

    #[test]
    fn stationary_actor_is_stable() {
        let mut h = HumanActor::new(3, Role::Worker, Vec2::new(2.0, 2.0));
        h.step(10.0);
        assert_eq!(h.position, Vec2::new(2.0, 2.0));
        assert!(h.is_idle());
    }
}
