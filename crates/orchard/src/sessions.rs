//! Many-session orchestration: a whole orchard day of negotiations
//! multiplexed on one shared deterministic event heap.
//!
//! The mission and fleet layers run one session at a time; an orchard day
//! runs hundreds to thousands — most of them idle at any instant (drones
//! hovering, humans deciding, links quiet). Stepping every session every
//! `DT` costs O(sessions × ticks); this orchestrator keeps exactly one
//! armed wake per live session on a shared [`EventHeap`] and advances only
//! the session whose due time is next, so the whole farm costs O(events).
//!
//! Sessions are independent, so multiplexing must not — and provably does
//! not — change any per-session result: the farm's outcomes are identical
//! to running each session alone (the tests pin this, including across
//! heap salts, which only permute same-instant dispatch order).

use hdc_core::{CollaborationSession, SessionConfig, SessionOutcome};
use hdc_runtime::{EventHeap, ScheduleMode};

/// Aggregate results of a session-farm run.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmStats {
    /// Per-session outcomes, in config order.
    pub outcomes: Vec<SessionOutcome>,
    /// True drone ticks executed across the farm (coasts excluded) — the
    /// work metric the event-driven scheduler is judged on.
    pub total_drone_ticks: u64,
    /// Scheduler dispatches: heap pops in event mode, per-session steps in
    /// lockstep mode.
    pub events_dispatched: u64,
}

impl FarmStats {
    /// Number of sessions that ended in `outcome`.
    pub fn count(&self, outcome: SessionOutcome) -> usize {
        self.outcomes.iter().filter(|o| **o == outcome).count()
    }
}

/// Runs every configured session to completion under the given scheduler
/// mode and aggregates the results.
///
/// * [`ScheduleMode::Lockstep`] interleaves one `DT` tick per live session
///   per round — the O(sessions × ticks) baseline, per-session identical to
///   [`CollaborationSession::run_report`].
/// * [`ScheduleMode::EventDriven`] multiplexes all sessions on one shared
///   [`EventHeap`] (session id in the event key, `salt` seeding the
///   same-instant tie-break) and advances each straight between its due
///   times — per-session identical to [`CollaborationSession::run_events`].
pub fn run_session_farm(configs: &[SessionConfig], mode: ScheduleMode, salt: u64) -> FarmStats {
    const TICK: f64 = CollaborationSession::TICK_S;
    let mut sessions: Vec<CollaborationSession> = configs
        .iter()
        .map(|c| CollaborationSession::new(*c))
        .collect();
    let mut events_dispatched = 0u64;

    match mode {
        ScheduleMode::Lockstep => loop {
            let mut live = false;
            for (session, config) in sessions.iter_mut().zip(configs) {
                if session.is_done() || session.time() >= config.max_duration_s {
                    continue;
                }
                session.step();
                events_dispatched += 1;
                live = true;
            }
            if !live {
                break;
            }
        },
        ScheduleMode::EventDriven => {
            let mut heap: EventHeap<f64> = EventHeap::new(salt);
            // the exact f64 target rides in the payload; the heap key is
            // integer microseconds and only orders the dispatch
            // arm computes exactly the target `run_events` would pick, so a
            // farmed session replays its solo event-driven run bit-for-bit
            let arm = |heap: &mut EventHeap<f64>, i: usize, s: &mut CollaborationSession| {
                let now = s.time();
                let mut due = s.next_due_after(now);
                if due <= now || due.is_nan() {
                    due = now + TICK;
                }
                let due = due.min(configs[i].max_duration_s);
                heap.schedule_at_s(due, i as u64, 0, due);
            };
            for (i, session) in sessions.iter_mut().enumerate() {
                arm(&mut heap, i, session);
            }
            while let Some(wake) = heap.pop() {
                let i = wake.session as usize;
                let session = &mut sessions[i];
                if session.is_done() || session.time() >= configs[i].max_duration_s {
                    continue;
                }
                events_dispatched += 1;
                // the armed target is strictly ahead of the session clock
                // (nothing moves a session between arming and dispatch)
                session.step_to(wake.event);
                if !session.is_done() && session.time() < configs[i].max_duration_s {
                    arm(&mut heap, i, session);
                }
            }
        }
    }

    FarmStats {
        total_drone_ticks: sessions.iter().map(|s| s.drone_ticks()).sum(),
        outcomes: sessions
            .into_iter()
            .map(|s| s.into_report().outcome)
            .collect(),
        events_dispatched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::{HumanScript, Role, ScriptedResponse};
    use hdc_figure::MarshallingSign;

    fn mixed_configs(n: usize) -> Vec<SessionConfig> {
        (0..n)
            .map(|i| {
                let role = [Role::Supervisor, Role::Worker, Role::Visitor][i % 3];
                let mut c = SessionConfig::for_role(role, i % 2 == 0, i as u64 + 1);
                if i % 4 == 0 {
                    c = c.with_script(HumanScript {
                        on_poke: ScriptedResponse::Sign(MarshallingSign::AttentionGained),
                        on_request: ScriptedResponse::Sign(MarshallingSign::Yes),
                        latency_s: 4.0 + (i % 5) as f64,
                    });
                }
                c
            })
            .collect()
    }

    #[test]
    fn event_farm_reproduces_each_session_run_alone() {
        let configs = mixed_configs(9);
        let farm = run_session_farm(&configs, ScheduleMode::EventDriven, 7);
        let mut solo_ticks = 0u64;
        for (i, config) in configs.iter().enumerate() {
            let mut solo = CollaborationSession::new(*config);
            let outcome = solo.run_events();
            assert_eq!(
                farm.outcomes[i], outcome,
                "session {i}: multiplexing changed the outcome"
            );
            solo_ticks += solo.drone_ticks();
        }
        assert_eq!(
            farm.total_drone_ticks, solo_ticks,
            "multiplexing changed the work done"
        );
    }

    #[test]
    fn lockstep_farm_reproduces_each_session_run_alone() {
        let configs = mixed_configs(6);
        let farm = run_session_farm(&configs, ScheduleMode::Lockstep, 0);
        for (i, config) in configs.iter().enumerate() {
            let report = CollaborationSession::new(*config).run_report();
            assert_eq!(farm.outcomes[i], report.outcome, "session {i}");
        }
    }

    #[test]
    fn heap_salt_never_leaks_into_outcomes() {
        // the salt permutes same-instant dispatch order only; sessions are
        // independent, so every salt must produce identical results
        let configs = mixed_configs(8);
        let a = run_session_farm(&configs, ScheduleMode::EventDriven, 1);
        let b = run_session_farm(&configs, ScheduleMode::EventDriven, 99);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.total_drone_ticks, b.total_drone_ticks);
    }

    #[test]
    fn event_farm_does_far_less_drone_work_than_lockstep() {
        let configs = mixed_configs(8);
        let lock = run_session_farm(&configs, ScheduleMode::Lockstep, 0);
        let ev = run_session_farm(&configs, ScheduleMode::EventDriven, 0);
        assert!(
            ev.total_drone_ticks < lock.total_drone_ticks,
            "event {} vs lockstep {}",
            ev.total_drone_ticks,
            lock.total_drone_ticks
        );
        assert!(
            ev.events_dispatched < lock.events_dispatched,
            "dispatches: event {} vs lockstep {}",
            ev.events_dispatched,
            lock.events_dispatched
        );
    }
}
