//! Mission metrics.

use hdc_core::SessionOutcome;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Negotiation outcome counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NegotiationTally {
    /// Access granted.
    pub granted: u32,
    /// Access denied.
    pub denied: u32,
    /// No usable response.
    pub abandoned: u32,
    /// Safety abort.
    pub aborted: u32,
}

impl NegotiationTally {
    /// Records an outcome.
    pub fn record(&mut self, outcome: SessionOutcome) {
        match outcome {
            SessionOutcome::Granted => self.granted += 1,
            SessionOutcome::Denied => self.denied += 1,
            SessionOutcome::Abandoned => self.abandoned += 1,
            SessionOutcome::Aborted => self.aborted += 1,
            SessionOutcome::StillRunning => {}
        }
    }

    /// Total negotiations recorded.
    pub fn total(&self) -> u32 {
        self.granted + self.denied + self.abandoned + self.aborted
    }

    /// Fraction granted (0 when none recorded).
    pub fn grant_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.granted as f64 / self.total() as f64
        }
    }
}

impl fmt::Display for NegotiationTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "granted {} / denied {} / abandoned {} / aborted {}",
            self.granted, self.denied, self.abandoned, self.aborted
        )
    }
}

/// Aggregate statistics of one mission.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MissionStats {
    /// Traps successfully read.
    pub traps_read: u32,
    /// Traps skipped (negotiation failed or battery abort).
    pub traps_skipped: u32,
    /// Negotiation outcomes.
    pub negotiations: NegotiationTally,
    /// Total simulated mission time, seconds.
    pub mission_time_s: f64,
    /// Total distance flown, metres.
    pub distance_flown_m: f64,
    /// Energy consumed, Wh.
    pub energy_wh: f64,
    /// Safety events observed.
    pub safety_events: u32,
}

impl fmt::Display for MissionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traps read      : {}", self.traps_read)?;
        writeln!(f, "traps skipped   : {}", self.traps_skipped)?;
        writeln!(f, "negotiations    : {}", self.negotiations)?;
        writeln!(f, "mission time    : {:.1} s", self.mission_time_s)?;
        writeln!(f, "distance flown  : {:.1} m", self.distance_flown_m)?;
        writeln!(f, "energy used     : {:.2} Wh", self.energy_wh)?;
        write!(f, "safety events   : {}", self.safety_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_records() {
        let mut t = NegotiationTally::default();
        t.record(SessionOutcome::Granted);
        t.record(SessionOutcome::Granted);
        t.record(SessionOutcome::Denied);
        t.record(SessionOutcome::StillRunning); // ignored
        assert_eq!(t.total(), 3);
        assert!((t.grant_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_rate() {
        assert_eq!(NegotiationTally::default().grant_rate(), 0.0);
    }

    #[test]
    fn stats_display() {
        let s = MissionStats {
            traps_read: 10,
            ..Default::default()
        };
        assert!(s.to_string().contains("traps read      : 10"));
    }
}
