//! The trap-collection mission with negotiated access.

use crate::agents::HumanActor;
use crate::events::{EventQueue, ScheduledEvent};
use crate::map::OrchardMap;
use crate::metrics::MissionStats;
use hdc_core::{CollaborationSession, Role, SessionConfig, SessionOutcome};
use hdc_drone::{Drone, DroneConfig, FlightPattern};
use hdc_geometry::{Vec2, Vec3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the mission resolves a blocked trap.
pub trait NegotiationBackend {
    /// Negotiates access with `actor`; returns the outcome.
    fn negotiate(&mut self, actor: &HumanActor, seed: u64) -> SessionOutcome;
}

/// Fast statistical negotiation: outcome probabilities derived from the role
/// profiles (calibrated against the full closed-loop sessions; see the
/// `statistical_backend_matches_full_loop` integration test).
#[derive(Debug, Clone, Default)]
pub struct StatisticalNegotiation;

impl NegotiationBackend for StatisticalNegotiation {
    fn negotiate(&mut self, actor: &HumanActor, seed: u64) -> SessionOutcome {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = actor.role.profile();
        // attention phase: up to 3 pokes
        let attended =
            (0..3).any(|_| rng.gen::<f64>() < p.attend_probability * p.correct_sign_probability);
        if !attended {
            return SessionOutcome::Abandoned;
        }
        // answer phase: up to 2 requests
        let answered = (0..2).any(|_| rng.gen::<f64>() < p.answer_probability);
        if !answered {
            return SessionOutcome::Abandoned;
        }
        let says_yes = actor.will_consent;
        let correct = rng.gen::<f64>() < p.correct_sign_probability;
        match (says_yes, correct) {
            (true, true) => SessionOutcome::Granted,
            (false, true) => SessionOutcome::Denied,
            // a garbled answer sign: the ambiguity test rejects it and the
            // retry usually lands; approximate with a second draw
            (intent, false) => {
                if rng.gen::<f64>() < p.correct_sign_probability {
                    if intent {
                        SessionOutcome::Granted
                    } else {
                        SessionOutcome::Denied
                    }
                } else {
                    SessionOutcome::Abandoned
                }
            }
        }
    }
}

/// Full closed-loop negotiation: runs a [`CollaborationSession`] (rendered
/// camera frames, SAX recognition, protocol machine) per encounter. Slow but
/// faithful; used by the integration tests and small demos.
#[derive(Debug, Clone, Default)]
pub struct FullLoopNegotiation;

impl NegotiationBackend for FullLoopNegotiation {
    fn negotiate(&mut self, actor: &HumanActor, seed: u64) -> SessionOutcome {
        let mut cfg = SessionConfig::for_role(actor.role, actor.will_consent, seed);
        cfg.human_position = actor.position;
        cfg.drone_home = actor.position + Vec2::new(10.0, 6.0);
        let mut session = CollaborationSession::new(cfg);
        session.run()
    }
}

/// Mission parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissionConfig {
    /// Cruise altitude between traps, metres.
    pub cruise_altitude_m: f64,
    /// Hover time to read a trap, seconds.
    pub read_time_s: f64,
    /// A human within this distance of a trap blocks it, metres.
    pub blocking_radius_m: f64,
    /// Number of human actors in the orchard.
    pub human_count: u32,
    /// Hard cap on mission time, seconds.
    pub max_mission_s: f64,
}

impl Default for MissionConfig {
    fn default() -> Self {
        MissionConfig {
            cruise_altitude_m: 6.0,
            read_time_s: 2.0,
            blocking_radius_m: 2.5,
            human_count: 2,
            max_mission_s: 3600.0,
        }
    }
}

/// The mission runner.
pub struct Mission {
    config: MissionConfig,
    map: OrchardMap,
    drone: Drone,
    humans: Vec<HumanActor>,
    queue: EventQueue,
    rng: SmallRng,
    stats: MissionStats,
    backend: Box<dyn NegotiationBackend>,
    time: f64,
}

impl std::fmt::Debug for Mission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mission")
            .field("config", &self.config)
            .field("time", &self.time)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Mission {
    /// Creates a mission over a map with the default (statistical)
    /// negotiation backend.
    pub fn new(config: MissionConfig, map: OrchardMap, seed: u64) -> Self {
        Mission::with_backend(config, map, seed, Box::new(StatisticalNegotiation))
    }

    /// Creates a mission with an explicit negotiation backend.
    pub fn with_backend(
        config: MissionConfig,
        map: OrchardMap,
        seed: u64,
        backend: Box<dyn NegotiationBackend>,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (lo, hi) = map.bounds();
        let roles = [Role::Supervisor, Role::Worker, Role::Worker, Role::Visitor];
        let humans = (0..config.human_count)
            .map(|i| {
                let pos = Vec2::new(rng.gen_range(lo.x..=hi.x), rng.gen_range(lo.y..=hi.y));
                let mut h = HumanActor::new(i, roles[i as usize % roles.len()], pos);
                h.will_consent = rng.gen::<f64>() < 0.8;
                h
            })
            .collect();
        Mission {
            // the mission drone derives its wind-process stream from the
            // mission seed rather than the ambient DroneConfig default
            drone: Drone::new(DroneConfig {
                seed: seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x0D0E),
                ..DroneConfig::default()
            }),
            humans,
            queue: EventQueue::new(),
            rng,
            stats: MissionStats::default(),
            backend,
            time: 0.0,
            config,
            map,
        }
    }

    /// The humans (for inspection).
    pub fn humans(&self) -> &[HumanActor] {
        &self.humans
    }

    /// The statistics so far.
    pub fn stats(&self) -> &MissionStats {
        &self.stats
    }

    fn advance_world(&mut self, duration: f64) {
        // step humans, the hovering drone (battery!) and the clock in 0.5 s slices
        let mut remaining = duration;
        while remaining > 0.0 {
            let dt = remaining.min(0.5);
            for h in &mut self.humans {
                h.step(dt);
            }
            self.drone.tick(dt);
            remaining -= dt;
        }
        self.time += duration;
    }

    fn fly_to(&mut self, target: Vec3) -> f64 {
        // abstract transit: distance / cruise speed, energy via the battery
        let from = self.drone.state().position;
        let dist = from.distance(target);
        let speed = 5.0;
        let duration = dist / speed;
        self.stats.distance_flown_m += dist;
        self.advance_world(duration);
        // teleport the drone model (the orchard layer abstracts transits;
        // the fine-grained dynamics live in hdc-drone and are exercised by
        // the session layer)
        self.drone.goto(target);
        let mut guard = 0.0;
        while self.drone.state().position.distance(target) > 0.35 && guard < duration * 4.0 + 10.0 {
            self.drone.tick(0.1);
            guard += 0.1;
        }
        duration
    }

    /// Runs the whole mission and returns the statistics.
    pub fn run(&mut self) -> MissionStats {
        // take off
        self.drone.execute_pattern(FlightPattern::TakeOff {
            target_altitude: self.config.cruise_altitude_m,
        });
        while self.drone.is_executing() {
            self.drone.tick(0.1);
            self.time += 0.1;
        }

        // schedule the tour
        let start = self.drone.state().position.xy();
        let mut pending_visits = 0u32;
        for id in self.map.plan_tour(start) {
            self.queue
                .schedule(self.time, ScheduledEvent::VisitTrap(id));
            pending_visits += 1;
        }
        for h in 0..self.humans.len() as u32 {
            self.queue
                .schedule(self.time + 5.0, ScheduledEvent::HumanReplan(h));
        }

        let energy0 = self.drone.battery().remaining_wh();

        while let Some((t, event)) = self.queue.pop() {
            if pending_visits == 0 {
                break; // only self-perpetuating housekeeping events remain
            }
            if t > self.config.max_mission_s {
                break;
            }
            if t > self.time {
                self.advance_world(t - self.time);
            }
            match event {
                ScheduledEvent::HumanReplan(id) => {
                    let (lo, hi) = self.map.bounds();
                    if let Some(h) = self.humans.get_mut(id as usize) {
                        if h.is_idle() {
                            h.replan(lo, hi, &mut self.rng);
                        }
                    }
                    self.queue
                        .schedule(self.time + 20.0, ScheduledEvent::HumanReplan(id));
                }
                ScheduledEvent::Checkpoint => {}
                ScheduledEvent::VisitTrap(id) => {
                    pending_visits -= 1;
                    let trap = self.map.traps()[id as usize];
                    let target = Vec3::from_xy(trap.position, self.config.cruise_altitude_m);
                    self.fly_to(target);

                    // is someone blocking?
                    let radius = self.config.blocking_radius_m;
                    let blocker = self
                        .humans
                        .iter()
                        .find(|h| h.blocks(trap.position, radius))
                        .cloned();
                    if let Some(actor) = blocker {
                        let seed = self.rng.gen();
                        let outcome = self.backend.negotiate(&actor, seed);
                        self.stats.negotiations.record(outcome);
                        // a negotiation takes real time
                        self.advance_world(30.0);
                        match outcome {
                            SessionOutcome::Granted => {}
                            SessionOutcome::Aborted => {
                                self.stats.safety_events += 1;
                                self.stats.traps_skipped += 1;
                                continue;
                            }
                            _ => {
                                self.stats.traps_skipped += 1;
                                continue;
                            }
                        }
                    }
                    // read the trap
                    self.advance_world(self.config.read_time_s);
                    self.map.traps_mut()[id as usize].read = true;
                    self.stats.traps_read += 1;
                }
            }
            if self.drone.battery().below_reserve() {
                // count everything unvisited as skipped and stop
                while let Some((_, e)) = self.queue.pop() {
                    if matches!(e, ScheduledEvent::VisitTrap(_)) {
                        self.stats.traps_skipped += 1;
                    }
                }
                self.stats.safety_events += 1;
                break;
            }
        }

        // return + land
        self.fly_to(Vec3::new(0.0, 0.0, self.config.cruise_altitude_m));
        self.drone.execute_pattern(FlightPattern::Landing);
        while self.drone.is_executing() {
            self.drone.tick(0.1);
            self.time += 0.1;
        }

        self.stats.mission_time_s = self.time;
        self.stats.energy_wh = energy0 - self.drone.battery().remaining_wh();
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_orchard_reads_everything() {
        let map = OrchardMap::grid(3, 3, 4.0, 3.0);
        let cfg = MissionConfig {
            human_count: 0,
            ..Default::default()
        };
        let mut m = Mission::new(cfg, map, 1);
        let stats = m.run();
        assert_eq!(stats.traps_read, 9);
        assert_eq!(stats.traps_skipped, 0);
        assert_eq!(stats.negotiations.total(), 0);
        assert!(stats.distance_flown_m > 0.0);
        assert!(stats.energy_wh > 0.0);
    }

    #[test]
    fn humans_cause_negotiations() {
        let map = OrchardMap::grid(4, 4, 4.0, 3.0);
        let cfg = MissionConfig {
            human_count: 6,
            blocking_radius_m: 6.0, // crowded orchard
            ..Default::default()
        };
        let mut m = Mission::new(cfg, map, 2);
        let stats = m.run();
        assert!(
            stats.negotiations.total() > 0,
            "crowd must trigger negotiations"
        );
        assert_eq!(stats.traps_read + stats.traps_skipped, 16);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let map = OrchardMap::grid(3, 3, 4.0, 3.0);
            let cfg = MissionConfig {
                human_count: 3,
                ..Default::default()
            };
            Mission::new(cfg, map, seed).run()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same mission");
        // don't assert inequality for different seeds (they may coincide),
        // but the stats should at least be well-formed
        let c = run(8);
        assert_eq!(c.traps_read + c.traps_skipped, 9);
    }

    #[test]
    fn statistical_backend_role_ordering() {
        // supervisors succeed more often than visitors
        let mut backend = StatisticalNegotiation;
        let mut rate = |role: Role| {
            let mut ok = 0;
            for seed in 0..200 {
                let mut actor = HumanActor::new(0, role, Vec2::ZERO);
                actor.will_consent = true;
                if backend.negotiate(&actor, seed) == SessionOutcome::Granted {
                    ok += 1;
                }
            }
            ok as f64 / 200.0
        };
        let sup = rate(Role::Supervisor);
        let vis = rate(Role::Visitor);
        assert!(sup > 0.9, "supervisor grant rate {sup}");
        assert!(vis < sup, "visitor {vis} below supervisor {sup}");
    }

    #[test]
    fn mission_time_is_positive_and_bounded() {
        let map = OrchardMap::grid(2, 2, 4.0, 3.0);
        let mut m = Mission::new(MissionConfig::default(), map, 3);
        let stats = m.run();
        assert!(stats.mission_time_s > 0.0);
        assert!(stats.mission_time_s < MissionConfig::default().max_mission_s);
    }
}
