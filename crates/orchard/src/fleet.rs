//! Multi-drone fleets.
//!
//! The paper's introduction frames the future as drones working
//! "collaboratively and cooperatively", and its efficiency argument —
//! "cost-efficient drones need only understand the bare minimum of signs" —
//! is about fleets of cheap machines. This module splits a trap-collection
//! mission across a fleet and aggregates the results (experiment E17).

use crate::map::OrchardMap;
use crate::metrics::MissionStats;
use crate::mission::{Mission, MissionConfig};
use hdc_geometry::Vec2;
use hdc_runtime::WorkPool;
use serde::{Deserialize, Serialize};

/// Fleet parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of drones.
    pub drone_count: u32,
    /// Per-drone mission parameters.
    pub mission: MissionConfig,
}

/// Aggregated fleet results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Per-drone statistics, in drone order.
    pub per_drone: Vec<MissionStats>,
    /// Wall-clock mission time: the slowest drone, seconds.
    pub makespan_s: f64,
    /// Total traps read across the fleet.
    pub traps_read: u32,
    /// Total energy consumed, Wh.
    pub energy_wh: f64,
}

impl FleetStats {
    /// Total distance flown by the fleet, metres.
    pub fn distance_flown_m(&self) -> f64 {
        self.per_drone.iter().map(|s| s.distance_flown_m).sum()
    }

    /// Total negotiations across the fleet.
    pub fn negotiations(&self) -> u32 {
        self.per_drone.iter().map(|s| s.negotiations.total()).sum()
    }
}

/// Runs a fleet over the orchard: the nearest-neighbour tour is split into
/// `drone_count` contiguous chunks (each drone sweeps one region), and each
/// drone flies its own [`Mission`]. Drones operate in disjoint regions, so
/// the missions are independent and the fleet's wall-clock time is the
/// slowest drone's (the makespan).
///
/// Serial shorthand for [`run_fleet_with`] on a machine-sized pool.
///
/// # Panics
/// Panics if `config.drone_count` is zero.
pub fn run_fleet(config: FleetConfig, map: &OrchardMap, seed: u64) -> FleetStats {
    run_fleet_with(&WorkPool::auto(), config, map, seed)
}

/// [`run_fleet`] with the drones simulated concurrently across a work pool.
///
/// Each drone's mission is a pure function of `(map chunk, seed + index)`,
/// so the per-drone statistics — and every aggregate — are identical at
/// every worker count, including the serial path.
///
/// # Panics
/// Panics if `config.drone_count` is zero.
pub fn run_fleet_with(
    pool: &WorkPool,
    config: FleetConfig,
    map: &OrchardMap,
    seed: u64,
) -> FleetStats {
    assert!(config.drone_count > 0, "a fleet needs at least one drone");
    let tour = map.plan_tour(Vec2::ZERO);
    let k = config.drone_count as usize;
    let chunk = tour.len().div_ceil(k);
    let chunks: Vec<&[u32]> = tour.chunks(chunk.max(1)).collect();

    let per_drone = pool.map_indexed(
        &chunks,
        |_| (),
        |_, i, ids| {
            // this drone's map: everything outside its chunk pre-marked read
            let mut sub_map = map.clone();
            for trap in sub_map.traps_mut() {
                if !ids.contains(&trap.id) {
                    trap.read = true;
                }
            }
            Mission::new(config.mission, sub_map, seed.wrapping_add(i as u64)).run()
        },
    );
    FleetStats {
        makespan_s: per_drone
            .iter()
            .map(|s| s.mission_time_s)
            .fold(0.0, f64::max),
        traps_read: per_drone.iter().map(|s| s.traps_read).sum(),
        energy_wh: per_drone.iter().map(|s| s.energy_wh).sum(),
        per_drone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet_of(n: u32, people: u32) -> FleetStats {
        let map = OrchardMap::grid(4, 6, 4.0, 3.0);
        let mission = MissionConfig {
            human_count: people,
            ..Default::default()
        };
        run_fleet(
            FleetConfig {
                drone_count: n,
                mission,
            },
            &map,
            5,
        )
    }

    #[test]
    fn single_drone_fleet_equals_solo_mission() {
        let stats = fleet_of(1, 0);
        assert_eq!(stats.per_drone.len(), 1);
        assert_eq!(stats.traps_read, 24);
        assert_eq!(stats.makespan_s, stats.per_drone[0].mission_time_s);
    }

    #[test]
    fn fleet_covers_every_trap_exactly_once() {
        for n in [2u32, 3, 4] {
            let stats = fleet_of(n, 0);
            assert_eq!(stats.traps_read, 24, "fleet of {n}");
        }
    }

    #[test]
    fn more_drones_shrink_the_makespan() {
        let solo = fleet_of(1, 0);
        let quad = fleet_of(4, 0);
        assert!(
            quad.makespan_s < solo.makespan_s * 0.7,
            "4 drones: {:.0}s vs solo {:.0}s",
            quad.makespan_s,
            solo.makespan_s
        );
    }

    #[test]
    fn fleet_pays_more_total_energy() {
        // each drone pays take-off/landing/return overhead
        let solo = fleet_of(1, 0);
        let quad = fleet_of(4, 0);
        assert!(quad.energy_wh > 0.0 && solo.energy_wh > 0.0);
        assert!(quad.distance_flown_m() > 0.0);
    }

    #[test]
    fn oversized_fleet_is_fine() {
        // more drones than traps: extra chunks are just empty
        let map = OrchardMap::grid(1, 2, 4.0, 3.0);
        let stats = run_fleet(
            FleetConfig {
                drone_count: 8,
                mission: MissionConfig {
                    human_count: 0,
                    ..Default::default()
                },
            },
            &map,
            1,
        );
        assert_eq!(stats.traps_read, 2);
    }

    #[test]
    fn fleet_is_identical_at_every_worker_count() {
        let map = OrchardMap::grid(4, 6, 4.0, 3.0);
        let config = FleetConfig {
            drone_count: 4,
            mission: MissionConfig {
                human_count: 2,
                ..Default::default()
            },
        };
        let serial = run_fleet_with(&WorkPool::new(1), config, &map, 5);
        for workers in [2usize, 4] {
            let parallel = run_fleet_with(&WorkPool::new(workers), config, &map, 5);
            assert_eq!(parallel, serial, "fleet stats drifted at {workers} workers");
        }
    }

    #[test]
    #[should_panic(expected = "at least one drone")]
    fn zero_drones_rejected() {
        let map = OrchardMap::grid(1, 1, 1.0, 1.0);
        run_fleet(
            FleetConfig {
                drone_count: 0,
                mission: MissionConfig::default(),
            },
            &map,
            1,
        );
    }
}
