//! Orchard simulation: the paper's use case, end to end.
//!
//! "We pick as our use case a known issue namely drones sharing workspace
//! with humans in cherry plantations where the drones collect data from fly
//! traps \[9\] which indicate whether further action, for instance spraying,
//! needs to take place. Given that this data collection will occur in the
//! presence of humans who may be blocking access to the fly traps, a
//! negotiated access to the traps must take place."
//!
//! This crate builds that world:
//!
//! * an [`OrchardMap`] of tree rows with [`FlyTrap`]s,
//! * [`HumanActor`]s patrolling between work sites, each with a
//!   [`hdc_core::Role`],
//! * an event-queue scheduler ([`EventQueue`]) driving trap-visit missions,
//! * a [`Mission`] runner in which the drone tours the traps, negotiates
//!   access with whoever blocks one (statistically or through the full
//!   closed vision loop), and collects [`MissionStats`].
//!
//! # Example
//! ```
//! use hdc_orchard::{Mission, MissionConfig, OrchardMap};
//! let map = OrchardMap::grid(3, 4, 4.0, 3.0);
//! let mut mission = Mission::new(MissionConfig::default(), map, 11);
//! let stats = mission.run();
//! assert_eq!(stats.traps_read + stats.traps_skipped, 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agents;
mod events;
mod fleet;
mod linked;
mod map;
mod metrics;
mod mission;
mod sessions;

pub use agents::HumanActor;
pub use events::{EventQueue, ScheduledEvent};
pub use fleet::{run_fleet, run_fleet_with, FleetConfig, FleetStats};
pub use linked::{
    run_linked_fleet, run_linked_fleet_mode, FleetCommand, FleetTelemetry, LinkedDroneStats,
    LinkedFleetConfig, LinkedFleetStats, RadioFailure,
};
pub use map::{FlyTrap, OrchardMap, Tree};
pub use metrics::{MissionStats, NegotiationTally};
pub use mission::{
    FullLoopNegotiation, Mission, MissionConfig, NegotiationBackend, StatisticalNegotiation,
};
pub use sessions::{run_session_farm, FarmStats};
