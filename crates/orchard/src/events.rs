//! A small discrete-event queue used by the mission scheduler.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled simulation event.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduledEvent {
    /// Begin travelling to the trap with this id.
    VisitTrap(u32),
    /// Human actor `id` re-plans its patrol.
    HumanReplan(u32),
    /// Mission progress checkpoint (battery / abort checks).
    Checkpoint,
}

#[derive(Debug, Clone)]
struct Entry {
    time: f64,
    seq: u64,
    event: ScheduledEvent,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want earliest first;
        // ties broken by insertion order for determinism
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Example
/// ```
/// use hdc_orchard::{EventQueue, ScheduledEvent};
/// let mut q = EventQueue::new();
/// q.schedule(2.0, ScheduledEvent::Checkpoint);
/// q.schedule(1.0, ScheduledEvent::VisitTrap(0));
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, 1.0);
/// assert_eq!(e, ScheduledEvent::VisitTrap(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is not finite.
    pub fn schedule(&mut self, time: f64, event: ScheduledEvent) {
        assert!(time.is_finite(), "event time must be finite");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, ScheduledEvent)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ScheduledEvent::Checkpoint);
        q.schedule(1.0, ScheduledEvent::VisitTrap(1));
        q.schedule(3.0, ScheduledEvent::VisitTrap(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_broken_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ScheduledEvent::VisitTrap(1));
        q.schedule(1.0, ScheduledEvent::VisitTrap(2));
        assert_eq!(q.pop().unwrap().1, ScheduledEvent::VisitTrap(1));
        assert_eq!(q.pop().unwrap().1, ScheduledEvent::VisitTrap(2));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(2.0, ScheduledEvent::Checkpoint);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_rejected() {
        EventQueue::new().schedule(f64::NAN, ScheduledEvent::Checkpoint);
    }
}
