//! The mission scheduler's discrete-event queue.
//!
//! Since the workspace grew a shared deterministic event heap
//! (`hdc_runtime::EventHeap`), this queue is a thin façade over it: the
//! mission layer schedules in float seconds and gets them back exactly as
//! scheduled (the original `f64` rides in the payload; the heap orders by
//! its integer-microsecond key), so mission statistics — and their golden
//! digests — are bit-identical to the pre-consolidation queue.

use hdc_runtime::EventHeap;
use serde::{Deserialize, Serialize};

/// A scheduled simulation event.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduledEvent {
    /// Begin travelling to the trap with this id.
    VisitTrap(u32),
    /// Human actor `id` re-plans its patrol.
    HumanReplan(u32),
    /// Mission progress checkpoint (battery / abort checks).
    Checkpoint,
}

/// A deterministic time-ordered event queue: earliest first, ties broken by
/// insertion order.
///
/// # Example
/// ```
/// use hdc_orchard::{EventQueue, ScheduledEvent};
/// let mut q = EventQueue::new();
/// q.schedule(2.0, ScheduledEvent::Checkpoint);
/// q.schedule(1.0, ScheduledEvent::VisitTrap(0));
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, 1.0);
/// assert_eq!(e, ScheduledEvent::VisitTrap(0));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: Option<EventHeap<(f64, ScheduledEvent)>>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    fn heap_mut(&mut self) -> &mut EventHeap<(f64, ScheduledEvent)> {
        // salt 0: the mission queue schedules everything under one session
        // id and rank, so ordering is (time, insertion) — the tie word never
        // differs between entries at one instant
        self.heap.get_or_insert_with(|| EventHeap::new(0))
    }

    /// Schedules an event at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is not finite.
    pub fn schedule(&mut self, time: f64, event: ScheduledEvent) {
        assert!(time.is_finite(), "event time must be finite");
        self.heap_mut().schedule_at_s(time, 0, 0, (time, event));
    }

    /// Removes and returns the earliest event, with the exact time it was
    /// scheduled at (no microsecond rounding on the way out).
    pub fn pop(&mut self) -> Option<(f64, ScheduledEvent)> {
        self.heap.as_mut()?.pop().map(|s| s.event)
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap
            .as_ref()
            .and_then(|h| h.peek_time())
            .map(hdc_runtime::micros_to_secs)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.as_ref().map_or(0, EventHeap::len)
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ScheduledEvent::Checkpoint);
        q.schedule(1.0, ScheduledEvent::VisitTrap(1));
        q.schedule(3.0, ScheduledEvent::VisitTrap(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_broken_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ScheduledEvent::VisitTrap(1));
        q.schedule(1.0, ScheduledEvent::VisitTrap(2));
        assert_eq!(q.pop().unwrap().1, ScheduledEvent::VisitTrap(1));
        assert_eq!(q.pop().unwrap().1, ScheduledEvent::VisitTrap(2));
    }

    #[test]
    fn scheduled_times_come_back_exactly() {
        // the heap keys by integer microseconds, but callers must see their
        // own float back (mission durations feed golden digests)
        let t = 12.300_000_000_4;
        let mut q = EventQueue::new();
        q.schedule(t, ScheduledEvent::Checkpoint);
        assert_eq!(q.pop().unwrap().0, t);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(2.0, ScheduledEvent::Checkpoint);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_rejected() {
        EventQueue::new().schedule(f64::NAN, ScheduledEvent::Checkpoint);
    }
}
