//! Supervised fleet dispatch over the fault-tolerant datalink.
//!
//! [`run_fleet`](crate::run_fleet) splits the trap tour once, up front, and
//! then every drone is on its own — fine for a perfect radio, wrong for a
//! real one. This module runs the same trap-collection campaign as a
//! *supervised* fleet: a ground-station supervisor holds each drone's chunk
//! of the tour and feeds it one [`FleetCommand::Assign`] at a time over a
//! reliable [`Endpoint`] riding a seeded [`LossyChannel`]; the drone works
//! the trap and reports [`FleetTelemetry::TrapRead`] back up the same way.
//!
//! The failure contract mirrors `hdc-core`'s session datalink:
//!
//! * **Reliable delivery** — assignments and reports survive drop,
//!   duplication and reordering; the endpoint's dedup window means no
//!   command's effect is ever applied twice at one drone.
//! * **Drone-side lease expiry** — a drone that hears nothing for the lease
//!   timeout abandons its work and returns home (the autonomous failsafe:
//!   it must not keep operating in a shared workspace unsupervised).
//! * **Supervisor-side lease expiry** — the supervisor declares the drone
//!   lost and re-dispatches its remaining chunk (everything assigned or
//!   queued but not yet confirmed) across the surviving drones. A trap the
//!   lost drone had already read but never managed to report is read a
//!   second time by someone else — counted as a duplicate read, the honest
//!   price of at-least-once dispatch over a partitioned link.
//!
//! Everything is seed-deterministic: the per-drone channels and endpoints
//! draw from streams derived from `(fleet seed, drone index)`, and the
//! whole campaign is a pure function of its inputs.

use crate::map::OrchardMap;
use hdc_geometry::Vec2;
use hdc_link::{
    Endpoint, EndpointConfig, EndpointStats, Frame, LeaseConfig, LinkQuality, LossyChannel,
};
use hdc_runtime::{EventHeap, ScheduleMode};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A supervisor → drone command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FleetCommand {
    /// Work this trap next.
    Assign {
        /// Trap id.
        trap: u32,
    },
    /// Abandon remaining work and return home.
    ReturnHome,
}

/// A drone → supervisor report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FleetTelemetry {
    /// The trap has been read.
    TrapRead {
        /// Trap id.
        trap: u32,
    },
}

/// One scheduled radio death: the drone's link partitions permanently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioFailure {
    /// Drone index.
    pub drone: u32,
    /// Simulation time the radio dies, seconds.
    pub at_s: f64,
}

/// Linked-fleet parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkedFleetConfig {
    /// Number of drones.
    pub drone_count: u32,
    /// Cruise speed between traps, m/s.
    pub cruise_speed_mps: f64,
    /// Time to read one trap, seconds.
    pub read_time_s: f64,
    /// Impairment model applied to every drone's link, both directions.
    pub quality: LinkQuality,
    /// Transport tuning, all endpoints.
    pub endpoint: EndpointConfig,
    /// Lease tuning, all endpoints.
    pub lease: LeaseConfig,
    /// Scheduled permanent radio failures.
    pub failures: Vec<RadioFailure>,
    /// Hard cap on the campaign, seconds.
    pub max_duration_s: f64,
}

impl Default for LinkedFleetConfig {
    fn default() -> Self {
        LinkedFleetConfig {
            drone_count: 3,
            cruise_speed_mps: 4.0,
            read_time_s: 3.0,
            quality: LinkQuality::clean(),
            endpoint: EndpointConfig::default(),
            lease: LeaseConfig::default(),
            failures: Vec::new(),
            max_duration_s: 1800.0,
        }
    }
}

/// Per-drone campaign statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkedDroneStats {
    /// Traps this drone physically read.
    pub reads: u32,
    /// Commands delivered to this drone (exactly once each).
    pub commands_received: u32,
    /// Whether the drone's own lease expired (autonomous return home).
    pub failsafed: bool,
    /// Whether the supervisor declared this drone lost.
    pub declared_lost: bool,
    /// The drone endpoint's transport statistics.
    pub endpoint: EndpointStats,
}

/// Aggregated linked-fleet results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkedFleetStats {
    /// Traps whose read was confirmed at the supervisor.
    pub traps_confirmed: u32,
    /// Traps in the campaign.
    pub traps_total: u32,
    /// Campaign duration, seconds.
    pub duration_s: f64,
    /// Drones the supervisor declared lost.
    pub drones_lost: u32,
    /// Traps re-dispatched after a loss.
    pub reassigned: u32,
    /// Physical re-reads caused by re-dispatching traps whose report was
    /// lost with the drone.
    pub duplicate_reads: u32,
    /// Per-drone statistics, in drone order.
    pub per_drone: Vec<LinkedDroneStats>,
}

/// Simulation step, seconds.
const DT: f64 = 0.1;

/// Nudge past a lease edge so the endpoints' strict `>` expiry comparison
/// fires at the wake the edge schedules.
const LEASE_EDGE_S: f64 = 1e-6;

/// Derives an independent stream seed (workspace-standard SplitMix64
/// finaliser) so per-drone link decisions never correlate.
fn derive_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a drone is doing right now.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DroneTask {
    /// Flying to a trap.
    Transit { trap: u32, arrive_at: f64 },
    /// Reading a trap.
    Reading { trap: u32, done_at: f64 },
}

/// One simulated fleet drone and its half of the link.
#[derive(Debug)]
struct FleetDrone {
    position: Vec2,
    task: Option<DroneTask>,
    backlog: VecDeque<u32>,
    failsafed: bool,
    reads: u32,
    commands_received: u32,
    endpoint: Endpoint<FleetTelemetry, FleetCommand>,
    up: LossyChannel<Frame<FleetTelemetry>>,
    down: LossyChannel<Frame<FleetCommand>>,
}

/// The supervisor's book-keeping for one drone.
#[derive(Debug)]
struct DroneLedger {
    /// This drone's remaining chunk of the tour (not yet assigned).
    chunk: VecDeque<u32>,
    /// The trap currently assigned and unconfirmed, if any.
    outstanding: Option<u32>,
    lost: bool,
    endpoint: Endpoint<FleetCommand, FleetTelemetry>,
}

/// The earliest simulation time at which any fleet component has work: a
/// transit arrival, a read completion, a retransmit / heartbeat / ack slot
/// on either end of a link, a queued channel delivery, or a lease edge
/// about to expire. May return times at or before `now` ("work is due
/// immediately") or `f64::INFINITY` (nothing pending); the caller bumps
/// both to one tick.
fn fleet_next_due(
    now: f64,
    drones: &[FleetDrone],
    ledgers: &[DroneLedger],
    lease_timeout_s: f64,
) -> f64 {
    let mut due = f64::INFINITY;
    for (drone, ledger) in drones.iter().zip(ledgers) {
        if !drone.failsafed {
            match drone.task {
                Some(DroneTask::Transit { arrive_at, .. }) => due = due.min(arrive_at),
                Some(DroneTask::Reading { done_at, .. }) => due = due.min(done_at),
                None if !drone.backlog.is_empty() => due = due.min(now + DT),
                None => {}
            }
            due = due.min((drone.endpoint.last_heard() + lease_timeout_s).max(now) + LEASE_EDGE_S);
        }
        if !ledger.lost {
            due = due.min((ledger.endpoint.last_heard() + lease_timeout_s).max(now) + LEASE_EDGE_S);
        }
        due = due.min(drone.endpoint.next_due(now));
        due = due.min(ledger.endpoint.next_due(now));
        if let Some(t) = drone.up.next_due() {
            due = due.min(t);
        }
        if let Some(t) = drone.down.next_due() {
            due = due.min(t);
        }
    }
    due
}

/// Runs the supervised campaign in lockstep-compat mode. See the module
/// docs for the dispatch and failure model, and
/// [`run_linked_fleet_mode`] for the scheduling contract.
///
/// # Panics
/// Panics if `config.drone_count` is zero.
pub fn run_linked_fleet(
    config: &LinkedFleetConfig,
    map: &OrchardMap,
    seed: u64,
) -> LinkedFleetStats {
    run_linked_fleet_mode(config, map, seed, ScheduleMode::Lockstep)
}

/// Runs the supervised campaign on the workspace event heap.
///
/// One wake event is armed at a time, carrying its exact `f64` due time as
/// payload (the heap key is integer microseconds; the payload keeps the
/// clock un-rounded). [`ScheduleMode::Lockstep`] arms `now + DT` every
/// iteration — the same float accumulation as the pre-scheduler fixed-rate
/// loop, so the golden fleet digests are bit-identical.
/// [`ScheduleMode::EventDriven`] arms the fleet's earliest due time from
/// [`fleet_next_due`], so an idle fleet (drones in long transits, quiet
/// links) costs O(events) instead of O(ticks).
///
/// # Panics
/// Panics if `config.drone_count` is zero.
pub fn run_linked_fleet_mode(
    config: &LinkedFleetConfig,
    map: &OrchardMap,
    seed: u64,
    mode: ScheduleMode,
) -> LinkedFleetStats {
    assert!(config.drone_count > 0, "a fleet needs at least one drone");
    let tour = map.plan_tour(Vec2::ZERO);
    let traps_total = tour.len() as u32;
    let k = config.drone_count as usize;
    let chunk_len = tour.len().div_ceil(k).max(1);

    let mut drones: Vec<FleetDrone> = Vec::with_capacity(k);
    let mut ledgers: Vec<DroneLedger> = Vec::with_capacity(k);
    for i in 0..k {
        let mut quality = config.quality;
        if let Some(failure) = config.failures.iter().find(|f| f.drone as usize == i) {
            // a dead radio is a partition that never heals
            quality = quality.with_partition(failure.at_s, f64::INFINITY);
        }
        let salt = i as u64;
        drones.push(FleetDrone {
            position: Vec2::ZERO,
            task: None,
            backlog: VecDeque::new(),
            failsafed: false,
            reads: 0,
            commands_received: 0,
            endpoint: Endpoint::new(
                config.endpoint,
                config.lease,
                derive_seed(seed, salt * 4 + 1),
                0.0,
            ),
            up: LossyChannel::new(quality, derive_seed(seed, salt * 4 + 2)),
            down: LossyChannel::new(quality, derive_seed(seed, salt * 4 + 3)),
        });
        ledgers.push(DroneLedger {
            chunk: tour
                .iter()
                .copied()
                .skip(i * chunk_len)
                .take(chunk_len)
                .collect(),
            outstanding: None,
            lost: false,
            endpoint: Endpoint::new(
                config.endpoint,
                config.lease,
                derive_seed(seed, salt * 4 + 4),
                0.0,
            ),
        });
    }

    let mut confirmed = vec![false; tour.len().max(map.traps().len())];
    let trap_position = |trap: u32| map.traps()[trap as usize].position;
    let mut now = 0.0;
    let mut drones_lost = 0u32;
    let mut reassigned = 0u32;

    let mut wakes: EventHeap<f64> = EventHeap::new(seed);
    let arm = |wakes: &mut EventHeap<f64>, now: f64, drones: &[FleetDrone], ledgers: &[_]| {
        let t = match mode {
            ScheduleMode::Lockstep => now + DT,
            ScheduleMode::EventDriven => {
                let due = fleet_next_due(now, drones, ledgers, config.lease.timeout_s);
                // anything due now — or an empty horizon — waits one tick
                if due > now {
                    due
                } else {
                    now + DT
                }
            }
        };
        wakes.schedule_at_s(t, 0, 0, t);
    };
    arm(&mut wakes, now, &drones, &ledgers);

    while let Some(wake) = wakes.pop() {
        if now >= config.max_duration_s {
            break;
        }
        now = wake.event.min(config.max_duration_s + DT);

        // --- drone work ---
        for drone in drones.iter_mut() {
            if drone.failsafed {
                continue;
            }
            if drone.task.is_none() {
                if let Some(trap) = drone.backlog.pop_front() {
                    let distance = drone.position.distance(trap_position(trap));
                    drone.task = Some(DroneTask::Transit {
                        trap,
                        arrive_at: now + distance / config.cruise_speed_mps,
                    });
                }
            }
            match drone.task {
                Some(DroneTask::Transit { trap, arrive_at }) if now >= arrive_at => {
                    drone.position = trap_position(trap);
                    drone.task = Some(DroneTask::Reading {
                        trap,
                        done_at: now + config.read_time_s,
                    });
                }
                Some(DroneTask::Reading { trap, done_at }) if now >= done_at => {
                    drone.task = None;
                    drone.reads += 1;
                    drone.endpoint.send(now, FleetTelemetry::TrapRead { trap });
                }
                _ => {}
            }
            // autonomous failsafe: a silent supervisor means the drone must
            // not keep operating unsupervised
            if drone.endpoint.lease_expired(now) {
                drone.failsafed = true;
                drone.task = None;
                drone.backlog.clear();
            }
        }

        // --- link pump, per drone ---
        for (drone, ledger) in drones.iter_mut().zip(ledgers.iter_mut()) {
            for frame in drone.endpoint.tick(now) {
                drone.up.send(now, frame);
            }
            for frame in ledger.endpoint.tick(now) {
                drone.down.send(now, frame);
            }
            for frame in drone.up.poll(now) {
                for telemetry in ledger.endpoint.handle(now, frame) {
                    let FleetTelemetry::TrapRead { trap } = telemetry;
                    confirmed[trap as usize] = true;
                    if ledger.outstanding == Some(trap) {
                        ledger.outstanding = None;
                    }
                }
            }
            for frame in drone.down.poll(now) {
                for command in drone.endpoint.handle(now, frame) {
                    drone.commands_received += 1;
                    match command {
                        FleetCommand::Assign { trap } => drone.backlog.push_back(trap),
                        FleetCommand::ReturnHome => {
                            drone.task = None;
                            drone.backlog.clear();
                        }
                    }
                }
            }
        }

        // --- supervisor: losses and re-dispatch ---
        for i in 0..ledgers.len() {
            if !ledgers[i].lost && ledgers[i].endpoint.lease_expired(now) {
                ledgers[i].lost = true;
                drones_lost += 1;
                // the lost drone's remaining chunk — outstanding first —
                // goes round-robin to the survivors
                let mut orphaned: Vec<u32> = ledgers[i].outstanding.take().into_iter().collect();
                orphaned.extend(ledgers[i].chunk.drain(..));
                orphaned.retain(|trap| !confirmed[*trap as usize]);
                reassigned += orphaned.len() as u32;
                let survivors: Vec<usize> =
                    (0..ledgers.len()).filter(|j| !ledgers[*j].lost).collect();
                if survivors.is_empty() {
                    continue;
                }
                for (n, trap) in orphaned.into_iter().enumerate() {
                    ledgers[survivors[n % survivors.len()]]
                        .chunk
                        .push_back(trap);
                }
            }
        }

        // --- supervisor: dispatch ---
        for ledger in ledgers.iter_mut() {
            if ledger.lost || ledger.outstanding.is_some() {
                continue;
            }
            // skip anything another drone confirmed since it was queued
            while let Some(trap) = ledger.chunk.pop_front() {
                if confirmed[trap as usize] {
                    continue;
                }
                ledger.endpoint.send(now, FleetCommand::Assign { trap });
                ledger.outstanding = Some(trap);
                break;
            }
        }

        // --- termination ---
        let all_confirmed = tour.iter().all(|trap| confirmed[*trap as usize]);
        let anyone_live = ledgers.iter().any(|l| !l.lost);
        let work_pending = ledgers
            .iter()
            .any(|l| !l.lost && (l.outstanding.is_some() || !l.chunk.is_empty()));
        if all_confirmed || !anyone_live || !work_pending {
            break;
        }
        arm(&mut wakes, now, &drones, &ledgers);
    }

    LinkedFleetStats {
        traps_confirmed: tour
            .iter()
            .filter(|trap| confirmed[**trap as usize])
            .count() as u32,
        traps_total,
        duration_s: now,
        drones_lost,
        reassigned,
        duplicate_reads: drones
            .iter()
            .map(|d| d.reads)
            .sum::<u32>()
            .saturating_sub(confirmed.iter().filter(|c| **c).count() as u32),
        per_drone: drones
            .iter()
            .zip(ledgers.iter())
            .map(|(drone, ledger)| LinkedDroneStats {
                reads: drone.reads,
                commands_received: drone.commands_received,
                failsafed: drone.failsafed,
                declared_lost: ledger.lost,
                endpoint: drone.endpoint.stats(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> OrchardMap {
        OrchardMap::grid(3, 4, 4.0, 3.0)
    }

    #[test]
    fn clean_link_confirms_every_trap() {
        let config = LinkedFleetConfig::default();
        let stats = run_linked_fleet(&config, &grid(), 7);
        assert_eq!(stats.traps_confirmed, 12);
        assert_eq!(stats.drones_lost, 0);
        assert_eq!(stats.reassigned, 0);
        assert_eq!(stats.duplicate_reads, 0);
        assert!(stats.per_drone.iter().all(|d| !d.failsafed));
    }

    #[test]
    fn lossy_link_still_confirms_every_trap() {
        let config = LinkedFleetConfig {
            quality: LinkQuality::clean().with_drop(0.3).with_jitter(0.4),
            ..Default::default()
        };
        let stats = run_linked_fleet(&config, &grid(), 7);
        assert_eq!(stats.traps_confirmed, 12, "{stats:?}");
        assert!(
            stats
                .per_drone
                .iter()
                .map(|d| d.endpoint.retransmits)
                .sum::<u64>()
                > 0,
            "recovery must come from retransmission"
        );
        assert_eq!(stats.drones_lost, 0);
    }

    #[test]
    fn radio_death_reassigns_the_chunk_and_finishes() {
        let config = LinkedFleetConfig {
            failures: vec![RadioFailure {
                drone: 1,
                at_s: 15.0,
            }],
            ..Default::default()
        };
        let stats = run_linked_fleet(&config, &grid(), 7);
        assert_eq!(stats.drones_lost, 1, "{stats:?}");
        assert!(stats.reassigned > 0, "the chunk must be re-dispatched");
        assert_eq!(stats.traps_confirmed, 12, "survivors must cover the loss");
        assert!(
            stats.per_drone[1].failsafed,
            "the dead-radio drone failsafes"
        );
        assert!(stats.per_drone[1].declared_lost);
    }

    #[test]
    fn losing_every_drone_terminates_promptly_with_partial_coverage() {
        let config = LinkedFleetConfig {
            drone_count: 2,
            failures: vec![
                RadioFailure {
                    drone: 0,
                    at_s: 10.0,
                },
                RadioFailure {
                    drone: 1,
                    at_s: 10.0,
                },
            ],
            ..Default::default()
        };
        let stats = run_linked_fleet(&config, &grid(), 7);
        assert_eq!(stats.drones_lost, 2);
        assert!(stats.traps_confirmed < 12);
        assert!(
            stats.duration_s < 60.0,
            "an all-lost fleet must not ride the cap: {}",
            stats.duration_s
        );
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let config = LinkedFleetConfig {
            quality: LinkQuality::clean().with_drop(0.25).with_dup(0.2),
            failures: vec![RadioFailure {
                drone: 2,
                at_s: 20.0,
            }],
            ..Default::default()
        };
        let a = run_linked_fleet(&config, &grid(), 11);
        let b = run_linked_fleet(&config, &grid(), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_reads_only_appear_after_a_loss() {
        // the drone dies mid-campaign with reports possibly unflushed; any
        // double-read must be attributable to the re-dispatch
        let config = LinkedFleetConfig {
            failures: vec![RadioFailure {
                drone: 0,
                at_s: 12.0,
            }],
            ..Default::default()
        };
        let stats = run_linked_fleet(&config, &grid(), 3);
        assert_eq!(stats.traps_confirmed, 12, "{stats:?}");
        assert!(
            stats.duplicate_reads <= stats.reassigned,
            "every duplicate read stems from a re-dispatched trap"
        );
    }

    #[test]
    fn event_driven_mode_confirms_every_trap_on_a_clean_link() {
        let config = LinkedFleetConfig::default();
        let stats = run_linked_fleet_mode(&config, &grid(), 7, ScheduleMode::EventDriven);
        assert_eq!(stats.traps_confirmed, 12, "{stats:?}");
        assert_eq!(stats.drones_lost, 0);
        assert!(stats.per_drone.iter().all(|d| !d.failsafed));
    }

    #[test]
    fn event_driven_mode_recovers_from_a_radio_death() {
        let config = LinkedFleetConfig {
            quality: LinkQuality::clean().with_drop(0.2),
            failures: vec![RadioFailure {
                drone: 1,
                at_s: 15.0,
            }],
            ..Default::default()
        };
        let stats = run_linked_fleet_mode(&config, &grid(), 7, ScheduleMode::EventDriven);
        assert_eq!(stats.drones_lost, 1, "{stats:?}");
        assert!(stats.reassigned > 0);
        assert_eq!(stats.traps_confirmed, 12, "survivors must cover the loss");
        assert!(stats.per_drone[1].failsafed);
    }

    #[test]
    fn event_driven_mode_is_seed_deterministic() {
        let config = LinkedFleetConfig {
            quality: LinkQuality::clean().with_drop(0.25).with_dup(0.2),
            ..Default::default()
        };
        let a = run_linked_fleet_mode(&config, &grid(), 11, ScheduleMode::EventDriven);
        let b = run_linked_fleet_mode(&config, &grid(), 11, ScheduleMode::EventDriven);
        assert_eq!(a, b);
    }

    #[test]
    fn lockstep_mode_is_the_default_entry_point() {
        let config = LinkedFleetConfig::default();
        let a = run_linked_fleet(&config, &grid(), 9);
        let b = run_linked_fleet_mode(&config, &grid(), 9, ScheduleMode::Lockstep);
        assert_eq!(a, b, "the wrapper must be exactly lockstep mode");
    }

    #[test]
    #[should_panic(expected = "at least one drone")]
    fn zero_drones_rejected() {
        let config = LinkedFleetConfig {
            drone_count: 0,
            ..Default::default()
        };
        run_linked_fleet(&config, &grid(), 1);
    }
}
