//! The orchard map: tree rows and fly traps.

use hdc_geometry::Vec2;
use serde::{Deserialize, Serialize};

/// One tree in the plantation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    /// Ground position.
    pub position: Vec2,
    /// Row index.
    pub row: u32,
    /// Column index within the row.
    pub col: u32,
}

/// A fly trap hung in a tree (the drone's data source).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlyTrap {
    /// Trap id (index into the map's trap list).
    pub id: u32,
    /// Ground position (at the tree).
    pub position: Vec2,
    /// Height of the trap above ground, metres.
    pub height_m: f64,
    /// Whether the trap has been read this mission.
    pub read: bool,
}

/// The plantation: a rectangular grid of trees, one trap per tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrchardMap {
    trees: Vec<Tree>,
    traps: Vec<FlyTrap>,
    row_spacing: f64,
    col_spacing: f64,
}

impl OrchardMap {
    /// Builds a `rows × cols` grid with the given spacings (metres).
    ///
    /// # Panics
    /// Panics if `rows`, `cols` or a spacing is zero/non-positive.
    pub fn grid(rows: u32, cols: u32, row_spacing: f64, col_spacing: f64) -> Self {
        assert!(rows > 0 && cols > 0, "orchard must have trees");
        assert!(
            row_spacing > 0.0 && col_spacing > 0.0,
            "spacings must be positive"
        );
        let mut trees = Vec::with_capacity((rows * cols) as usize);
        let mut traps = Vec::with_capacity((rows * cols) as usize);
        for r in 0..rows {
            for c in 0..cols {
                let position = Vec2::new(c as f64 * col_spacing, r as f64 * row_spacing);
                trees.push(Tree {
                    position,
                    row: r,
                    col: c,
                });
                traps.push(FlyTrap {
                    id: (r * cols + c),
                    position,
                    height_m: 1.8,
                    read: false,
                });
            }
        }
        OrchardMap {
            trees,
            traps,
            row_spacing,
            col_spacing,
        }
    }

    /// The trees.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// The traps.
    pub fn traps(&self) -> &[FlyTrap] {
        &self.traps
    }

    /// Mutable trap access (mission bookkeeping).
    pub fn traps_mut(&mut self) -> &mut [FlyTrap] {
        &mut self.traps
    }

    /// Bounding rectangle of the plantation `(min, max)`, with a margin.
    pub fn bounds(&self) -> (Vec2, Vec2) {
        let mut lo = Vec2::splat(f64::INFINITY);
        let mut hi = Vec2::splat(f64::NEG_INFINITY);
        for t in &self.trees {
            lo = lo.min(t.position);
            hi = hi.max(t.position);
        }
        (lo - Vec2::splat(2.0), hi + Vec2::splat(2.0))
    }

    /// Nearest-neighbour tour over all unread traps starting from `from`.
    ///
    /// Returns trap ids in visiting order — the mission's route.
    pub fn plan_tour(&self, from: Vec2) -> Vec<u32> {
        let mut remaining: Vec<&FlyTrap> = self.traps.iter().filter(|t| !t.read).collect();
        let mut tour = Vec::with_capacity(remaining.len());
        let mut at = from;
        while !remaining.is_empty() {
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    at.distance(a.position)
                        .partial_cmp(&at.distance(b.position))
                        .unwrap()
                })
                .expect("non-empty");
            let trap = remaining.swap_remove(idx);
            at = trap.position;
            tour.push(trap.id);
        }
        tour
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions() {
        let m = OrchardMap::grid(3, 5, 4.0, 3.0);
        assert_eq!(m.trees().len(), 15);
        assert_eq!(m.traps().len(), 15);
        assert_eq!(m.trees()[0].position, Vec2::ZERO);
        assert_eq!(m.trees()[14].position, Vec2::new(12.0, 8.0));
    }

    #[test]
    fn bounds_include_margin() {
        let m = OrchardMap::grid(2, 2, 4.0, 3.0);
        let (lo, hi) = m.bounds();
        assert_eq!(lo, Vec2::new(-2.0, -2.0));
        assert_eq!(hi, Vec2::new(5.0, 6.0));
    }

    #[test]
    fn tour_visits_every_trap_once() {
        let m = OrchardMap::grid(4, 4, 4.0, 3.0);
        let tour = m.plan_tour(Vec2::new(-5.0, -5.0));
        assert_eq!(tour.len(), 16);
        let mut sorted = tour.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "no repeats");
    }

    #[test]
    fn tour_starts_nearby() {
        let m = OrchardMap::grid(3, 3, 4.0, 3.0);
        let tour = m.plan_tour(Vec2::new(0.0, 0.0));
        assert_eq!(tour[0], 0, "nearest trap first");
    }

    #[test]
    fn tour_skips_read_traps() {
        let mut m = OrchardMap::grid(2, 2, 4.0, 3.0);
        m.traps_mut()[0].read = true;
        let tour = m.plan_tour(Vec2::ZERO);
        assert_eq!(tour.len(), 3);
        assert!(!tour.contains(&0));
    }

    #[test]
    fn nearest_neighbour_tour_is_not_terrible() {
        // tour length within 2× of the row-by-row boustrophedon length
        let m = OrchardMap::grid(5, 5, 4.0, 3.0);
        let tour = m.plan_tour(Vec2::ZERO);
        let mut len = 0.0;
        let mut at = Vec2::ZERO;
        for id in &tour {
            let p = m.traps()[*id as usize].position;
            len += at.distance(p);
            at = p;
        }
        let boustrophedon = 5.0 * 12.0 + 4.0 * 4.0; // 5 rows of 12 m + 4 row changes
        assert!(
            len < 2.0 * boustrophedon,
            "tour {len} vs serpentine {boustrophedon}"
        );
    }

    #[test]
    #[should_panic(expected = "trees")]
    fn empty_grid_rejected() {
        OrchardMap::grid(0, 3, 1.0, 1.0);
    }
}
