//! Prints per-stage timings for the optimised path and hand-timed stages of
//! the seed path, to locate where the time goes at each resolution.

use hdc_bench::throughput::benchmark_pipeline;
use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::threshold::binarize;
use hdc_raster::{label_components_bfs, largest_component, Connectivity};
use hdc_vision::FrameScratch;
use std::time::Instant;

fn main() {
    let pipeline = benchmark_pipeline();
    for (w, h) in [(320u32, 240u32), (640, 480), (1280, 960)] {
        let mut v = ViewSpec::paper_default(0.0, 5.0, 3.0);
        v.width = w;
        v.height = h;
        v.focal_px = w as f64;
        let frame = render_sign(MarshallingSign::No, &v);

        let mut scratch = FrameScratch::new();
        // warm-up
        for _ in 0..5 {
            pipeline.recognize_with(&mut scratch, &frame);
        }
        let reps = 50;
        let mut acc = hdc_vision::StageTimings::default();
        let t = Instant::now();
        for _ in 0..reps {
            let r = pipeline.recognize_with(&mut scratch, &frame);
            let ti = r.timings;
            acc.segment_us += ti.segment_us;
            acc.component_us += ti.component_us;
            acc.contour_us += ti.contour_us;
            acc.signature_us += ti.signature_us;
            acc.classify_us += ti.classify_us;
        }
        let opt_total = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
        println!(
            "{w}x{h} optimised ({opt_total:.0}us/frame): segment {} | component {} | contour {} | signature {} | classify {}",
            acc.segment_us / reps,
            acc.component_us / reps,
            acc.contour_us / reps,
            acc.signature_us / reps,
            acc.classify_us / reps
        );

        // seed stages, hand-timed
        let t0 = Instant::now();
        let mut mask = binarize(&frame, 128);
        for _ in 1..reps {
            mask = binarize(&frame, 128);
        }
        let seg = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            let _ = label_components_bfs(&mask, Connectivity::Eight);
        }
        let bfs = t1.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t2 = Instant::now();
        for _ in 0..reps {
            let _ = largest_component(&mask, Connectivity::Eight);
        }
        let lc = t2.elapsed().as_secs_f64() * 1e6 / reps as f64;
        println!(
            "{w}x{h} seed: binarize {seg:.0}us | label_bfs {bfs:.0}us | largest_component(new) {lc:.0}us"
        );
    }
}
