//! Sustained-stream gating study: the `bench_stream` workload and report.
//!
//! The temporal gate's value proposition lives or dies on the *shape* of a
//! real marshalling stream: a human holds each sign for seconds while the
//! camera oversamples, so frames arrive as long runs of near-identical
//! images punctuated by short transitions. [`held_sign_stream`] synthesises
//! exactly that — static holds with sensor jitter, duplicated frames from
//! camera oversampling, and `Pose::lerp` transitions between signs — and
//! [`gating_study`] serves it through [`RecognitionEngine::run_streams_gated`]
//! once per gate mode so the sustained-fps comparison (ungated vs strict vs
//! approximate) is measured on the same frames, engine and floors.
//!
//! Approximate mode may diverge from the ungated oracle, so the report also
//! *measures* that divergence ([`decision_divergence`]) on the deterministic
//! [`RecognitionEngine::process_streams`] path and commits the rate next to
//! the fps numbers in `BENCH_stream.json` — a speedup quoted without its
//! error rate is not a result.

use crate::frames::view_at;
use hdc_figure::{render_pose, MarshallingSign, Pose};
use hdc_raster::noise::add_salt_pepper;
use hdc_raster::GrayImage;
use hdc_runtime::available_workers;
use hdc_vision::temporal::TemporalConfig;
use hdc_vision::{MultiStreamReport, RecognitionEngine};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Shape of the synthetic held-sign stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamWorkload {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Hold segments per stream (signs cycle through the alphabet).
    pub holds: usize,
    /// Distinct jittered keyframes per hold (sensor noise re-rolls).
    pub keyframes_per_hold: usize,
    /// Byte-identical repeats of each keyframe (camera oversampling of a
    /// static scene — what the strict gate exists for).
    pub dups_per_keyframe: usize,
    /// `Pose::lerp` frames leading into each hold (every one unique — the
    /// part of the stream no gate may swallow).
    pub transition_frames: usize,
    /// Salt-and-pepper probability of the per-keyframe sensor jitter.
    pub jitter: f64,
}

impl StreamWorkload {
    /// The committed benchmark workload: VGA streams, ~1.6 s holds at the
    /// paper's 30 fps (6 sensor-noise keyframes × 8 oversampled
    /// duplicates), 4-frame transitions, 0.1% salt-and-pepper jitter.
    pub fn standard() -> Self {
        StreamWorkload {
            width: 640,
            height: 480,
            holds: 6,
            keyframes_per_hold: 6,
            dups_per_keyframe: 8,
            transition_frames: 4,
            jitter: 0.001,
        }
    }

    /// A tiny variant for CI smoke runs and tests.
    pub fn smoke() -> Self {
        StreamWorkload {
            width: 320,
            height: 240,
            holds: 2,
            keyframes_per_hold: 2,
            dups_per_keyframe: 2,
            transition_frames: 2,
            jitter: 0.001,
        }
    }

    /// Frames one stream of this shape contains.
    pub fn frames_per_stream(&self) -> usize {
        self.holds * (self.transition_frames + self.keyframes_per_hold * self.dups_per_keyframe)
    }
}

/// One synthetic camera stream: for each hold, `transition_frames` of
/// `Pose::lerp` morphing from the previous posture, then the held sign as
/// `keyframes_per_hold` jitter re-rolls × `dups_per_keyframe` byte-identical
/// repeats. `seed` offsets the sign cycle and the noise, so a fleet of
/// streams never runs in lock-step.
pub fn held_sign_stream(w: &StreamWorkload, seed: u64) -> Vec<GrayImage> {
    let view = view_at(w.width, w.height, 0.0);
    let mut rng = SmallRng::seed_from_u64(0x5eed_0000 ^ seed);
    let mut frames = Vec::with_capacity(w.frames_per_stream());
    let mut pose_from = Pose::neutral();
    for hold in 0..w.holds {
        let sign = MarshallingSign::ALL[(hold + seed as usize) % MarshallingSign::ALL.len()];
        let pose_to = Pose::for_sign(sign);
        for step in 1..=w.transition_frames {
            let t = step as f64 / (w.transition_frames + 1) as f64;
            frames.push(render_pose(pose_from.lerp(&pose_to, t), &view));
        }
        let base = render_pose(pose_to, &view);
        for _ in 0..w.keyframes_per_hold {
            let mut keyframe = base.clone();
            add_salt_pepper(&mut keyframe, w.jitter, &mut rng);
            for _ in 0..w.dups_per_keyframe {
                frames.push(keyframe.clone());
            }
        }
        pose_from = pose_to;
    }
    frames
}

/// A fleet of [`held_sign_stream`]s with per-stream seeds.
pub fn held_sign_streams(w: &StreamWorkload, streams: usize) -> Vec<Vec<GrayImage>> {
    (0..streams as u64)
        .map(|s| held_sign_stream(w, s))
        .collect()
}

/// One gate mode's sustained-serving measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRun {
    /// Mode name as committed in the JSON (`off`/`strict`/`approximate`).
    pub label: &'static str,
    /// The sustained multi-stream report for this mode.
    pub report: MultiStreamReport,
}

/// Serves the same streams once per gate mode (ungated first, so every
/// later run's speedup divides by it) with identical floors.
pub fn gating_study(
    engine: &RecognitionEngine,
    streams: &[Vec<GrayImage>],
    min_frames_per_stream: usize,
    min_seconds: f64,
) -> Vec<GateRun> {
    [
        ("off", TemporalConfig::off()),
        ("strict", TemporalConfig::strict()),
        ("approximate", TemporalConfig::approximate()),
    ]
    .into_iter()
    .map(|(label, gate)| GateRun {
        label,
        report: engine.run_streams_gated(streams, min_frames_per_stream, min_seconds, gate),
    })
    .collect()
}

/// Decision divergence of a gated run against the ungated oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Divergence {
    /// Frames compared.
    pub frames: usize,
    /// Frames whose accepted decision differed from the oracle's.
    pub divergent: usize,
}

impl Divergence {
    /// Divergent fraction (0 when nothing was compared).
    pub fn rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.divergent as f64 / self.frames as f64
        }
    }
}

/// Measures per-frame decision divergence of `gate` against the ungated
/// oracle on the deterministic [`RecognitionEngine::process_streams`] path
/// (two passes, so reuse carries across the stream's cycle boundary exactly
/// as it does in sustained serving).
pub fn decision_divergence(
    engine: &RecognitionEngine,
    streams: &[Vec<GrayImage>],
    gate: TemporalConfig,
) -> Divergence {
    let oracle = engine.process_streams(streams, 2, TemporalConfig::off());
    let gated = engine.process_streams(streams, 2, gate);
    let mut d = Divergence::default();
    for (o_stream, g_stream) in oracle.iter().zip(&gated) {
        for (o, g) in o_stream.iter().zip(g_stream) {
            d.frames += 1;
            if o.decision != g.decision {
                d.divergent += 1;
            }
        }
    }
    d
}

/// Renders the study as the JSON document committed at `BENCH_stream.json`
/// (hand-rolled: the workspace has no JSON dependency).
#[allow(clippy::too_many_arguments)]
pub fn stream_json(
    workload: &StreamWorkload,
    streams: usize,
    workers: usize,
    threads_flag: Option<usize>,
    runs: &[GateRun],
    strict_divergence: Divergence,
    approx_divergence: Divergence,
) -> String {
    let baseline_fps = runs
        .iter()
        .find(|r| r.label == "off")
        .map(|r| r.report.aggregate_fps())
        .unwrap_or(f64::NAN);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"benchmark\": \"temporal-coherence gating: sustained held-sign stream serving\",\n",
    );
    let _ = writeln!(
        s,
        "  \"metadata\": {{\n    \"threads_flag\": {},\n    \"available_parallelism\": {},\n    \"workers\": {},\n    \"streams\": {},\n    \"width\": {}, \"height\": {},\n    \"holds\": {}, \"keyframes_per_hold\": {}, \"dups_per_keyframe\": {}, \"transition_frames\": {},\n    \"jitter\": {}\n  }},",
        threads_flag
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".to_owned()),
        available_workers(),
        workers,
        streams,
        workload.width,
        workload.height,
        workload.holds,
        workload.keyframes_per_hold,
        workload.dups_per_keyframe,
        workload.transition_frames,
        workload.jitter,
    );
    s.push_str("  \"protocol\": {\n");
    s.push_str("    \"stream\": \"held marshalling signs: per hold, lerp transition frames then keyframes x byte-identical oversampled duplicates, salt-and-pepper sensor jitter per keyframe\",\n");
    s.push_str("    \"modes\": \"same engine, streams and floors served once per gate mode (off = ungated baseline)\",\n");
    s.push_str("    \"divergence\": \"per-frame accepted-decision mismatch vs the ungated oracle on the deterministic process_streams path (2 passes)\",\n");
    s.push_str("    \"note\": \"sustained fps is per-worker on a 1-thread host; speedup_vs_off is the gate's work saving and is host-independent\"\n");
    s.push_str("  },\n");
    s.push_str("  \"modes\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let gate = run.report.gate_totals();
        let _ = writeln!(
            s,
            "    {{\"mode\": \"{}\", \"seconds\": {:.2}, \"frames\": {}, \"aggregate_fps\": {:.2}, \"speedup_vs_off\": {:.2}, \"gate\": {{\"strict_hits\": {}, \"approx_hits\": {}, \"signature_short_circuits\": {}, \"full_runs\": {}}}}}{}",
            run.label,
            run.report.seconds,
            run.report.total_frames(),
            run.report.aggregate_fps(),
            run.report.aggregate_fps() / baseline_fps,
            gate.strict_hits,
            gate.approx_hits,
            gate.signature_short_circuits,
            gate.full_runs,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"divergence\": {{\n    \"strict\": {{\"frames\": {}, \"divergent\": {}, \"rate\": {:.6}}},\n    \"approximate\": {{\"frames\": {}, \"divergent\": {}, \"rate\": {:.6}}}\n  }}",
        strict_divergence.frames,
        strict_divergence.divergent,
        strict_divergence.rate(),
        approx_divergence.frames,
        approx_divergence.divergent,
        approx_divergence.rate(),
    );
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::benchmark_pipeline;

    fn engine() -> RecognitionEngine {
        RecognitionEngine::new(benchmark_pipeline(), Some(2))
    }

    #[test]
    fn workload_shape_matches_the_arithmetic() {
        let w = StreamWorkload::smoke();
        let stream = held_sign_stream(&w, 0);
        assert_eq!(stream.len(), w.frames_per_stream());
        assert!(stream
            .iter()
            .all(|f| f.width() == w.width && f.height() == w.height));
        // oversampled duplicates really are byte-identical (the strict
        // gate's food) and seeds decorrelate streams
        let first_hold_keyframe = w.transition_frames;
        assert_eq!(
            stream[first_hold_keyframe].pixels(),
            stream[first_hold_keyframe + 1].pixels()
        );
        assert_ne!(
            held_sign_stream(&w, 1)[first_hold_keyframe].pixels(),
            stream[first_hold_keyframe].pixels()
        );
    }

    #[test]
    fn strict_gating_never_diverges_on_the_benchmark_workload() {
        let streams = held_sign_streams(&StreamWorkload::smoke(), 2);
        let d = decision_divergence(&engine(), &streams, TemporalConfig::strict());
        assert_eq!(d.divergent, 0, "strict mode must match the oracle exactly");
        assert_eq!(d.frames, streams.iter().map(|s| s.len() * 2).sum::<usize>());
    }

    #[test]
    fn approximate_divergence_stays_bounded() {
        let streams = held_sign_streams(&StreamWorkload::smoke(), 2);
        let d = decision_divergence(&engine(), &streams, TemporalConfig::approximate());
        assert!(
            d.rate() <= 0.05,
            "approximate divergence {} ({}/{}) exceeds the 5% bound",
            d.rate(),
            d.divergent,
            d.frames
        );
    }

    #[test]
    fn study_covers_all_three_modes_and_the_gate_actually_hits() {
        let w = StreamWorkload::smoke();
        let streams = held_sign_streams(&w, 2);
        let runs = gating_study(&engine(), &streams, w.frames_per_stream(), 0.0);
        assert_eq!(
            runs.iter().map(|r| r.label).collect::<Vec<_>>(),
            ["off", "strict", "approximate"]
        );
        let strict = runs[1].report.gate_totals();
        assert!(
            strict.strict_hits > 0,
            "duplicates must hit the strict gate"
        );
        let approx = runs[2].report.gate_totals();
        assert!(approx.approx_hits > 0, "jitter must hit the tile gate");
        assert!(
            approx.strict_hits > 0,
            "duplicates must hit the identity pre-check"
        );
        for run in &runs {
            assert_eq!(run.report.gate_totals().frames(), run.report.total_frames());
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let w = StreamWorkload::smoke();
        let streams = held_sign_streams(&w, 1);
        let runs = gating_study(&engine(), &streams, 1, 0.0);
        let d = Divergence {
            frames: 10,
            divergent: 1,
        };
        let json = stream_json(&w, 1, 2, Some(2), &runs, Divergence::default(), d);
        assert!(json.contains("\"mode\": \"off\""));
        assert!(json.contains("\"mode\": \"strict\""));
        assert!(json.contains("\"mode\": \"approximate\""));
        assert!(json.contains("\"divergence\""));
        assert!(json.contains("\"rate\": 0.100000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
