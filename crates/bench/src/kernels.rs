//! Per-kernel microbenchmarks: byte oracles vs bit-packed word-parallel
//! kernels.
//!
//! The throughput sweep in [`crate::throughput`] measures the whole
//! pipeline; this module isolates each silhouette kernel so the
//! `--kernels` mode of `bench_recognize` can report where the packed
//! representation actually pays. Every kernel runs over the same VGA
//! sign stream the pipeline benchmarks use, one timed call per frame,
//! averaged over enough iterations to be stable.
//!
//! Kernels with no committed byte implementation (the mask diff pair,
//! which this PR introduces for the temporal gate) are compared against
//! the naive per-pixel loop they replace.

use crate::frames::sign_stream;
use hdc_raster::diff::{mask_diff_count, mask_tile_diff_into};
use hdc_raster::morphology::{dilate_into, dilate_packed_into, erode_into, erode_packed_into};
use hdc_raster::threshold::{binarize_into, binarize_packed_into};
use hdc_raster::{
    largest_component_packed_with, largest_component_with, trace_outer_contour_into,
    trace_outer_contour_packed_into, BitMask, Bitmap, Connectivity, ContourPoint, LabelScratch,
};
use std::hint::black_box;
use std::time::Instant;

/// The binarisation threshold the kernel workload uses. The rendered
/// silhouettes are white-on-black, so any mid-scale value yields the
/// same masks; 128 matches the pipeline's default fixed segmentation.
const THRESHOLD: u8 = 128;

/// Tile edge for the tiled mask diff, matching the temporal gate's
/// default.
const TILE: u32 = 16;

/// One kernel's byte-vs-packed timing at the benchmark resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelResult {
    /// Kernel name as it appears in the report.
    pub name: &'static str,
    /// Mean nanoseconds per frame for the byte-per-pixel implementation.
    pub byte_ns: f64,
    /// Mean nanoseconds per frame for the bit-packed implementation.
    pub packed_ns: f64,
}

impl KernelResult {
    /// Byte time over packed time: how many times faster the packed
    /// kernel is on this workload.
    pub fn speedup(&self) -> f64 {
        self.byte_ns / self.packed_ns
    }
}

/// Times `f` over `iters` repetitions of a `frames`-frame workload
/// (after one untimed warm-up repetition) and returns mean nanoseconds
/// per frame.
fn time_per_frame(frames: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: scratch buffers reach capacity, caches settle
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / (iters * frames) as f64
}

/// The naive per-pixel mask diff the packed XOR-popcount replaces.
fn mask_diff_naive(a: &Bitmap, b: &Bitmap) -> u64 {
    a.pixels()
        .iter()
        .zip(b.pixels())
        .filter(|(x, y)| x != y)
        .count() as u64
}

/// The naive per-pixel tiled mask diff the packed word-segment splitter
/// replaces.
fn mask_tile_diff_naive(a: &Bitmap, b: &Bitmap, tile: u32, out: &mut Vec<u64>) {
    let tiles_x = a.width().div_ceil(tile) as usize;
    let tiles_y = a.height().div_ceil(tile) as usize;
    out.clear();
    out.resize(tiles_x * tiles_y, 0);
    for y in 0..a.height() {
        let ty = (y / tile) as usize;
        for x in 0..a.width() {
            if a.get(x, y) != b.get(x, y) {
                out[ty * tiles_x + (x / tile) as usize] += 1;
            }
        }
    }
}

/// Runs every kernel pair over the `width`×`height` sign stream,
/// `iters` timed repetitions each, and returns one row per kernel.
pub fn run_kernel_bench(width: u32, height: u32, iters: usize) -> Vec<KernelResult> {
    let frames = sign_stream(width, height);
    let n = frames.len();

    // Pre-binarised inputs for every downstream kernel, both layouts.
    let mut byte_masks: Vec<Bitmap> = Vec::with_capacity(n);
    let mut packed_masks: Vec<BitMask> = Vec::with_capacity(n);
    for f in &frames {
        let mut m = Bitmap::new(width, height);
        binarize_into(f, THRESHOLD, &mut m);
        let mut p = BitMask::new(width, height);
        binarize_packed_into(f, THRESHOLD, &mut p);
        byte_masks.push(m);
        packed_masks.push(p);
    }

    // Isolated blobs for the contour kernels.
    let mut byte_blobs: Vec<Bitmap> = Vec::with_capacity(n);
    let mut packed_blobs: Vec<BitMask> = Vec::with_capacity(n);
    let mut scratch = LabelScratch::new();
    for (m, p) in byte_masks.iter().zip(&packed_masks) {
        let mut blob = Bitmap::new(width, height);
        largest_component_with(m, Connectivity::Eight, &mut blob, &mut scratch)
            .expect("sign frames always contain a blob");
        byte_blobs.push(blob);
        let mut pblob = BitMask::new(width, height);
        largest_component_packed_with(p, Connectivity::Eight, &mut pblob, &mut scratch)
            .expect("sign frames always contain a blob");
        packed_blobs.push(pblob);
    }

    let mut results = Vec::new();

    let mut out_b = Bitmap::new(width, height);
    let mut out_p = BitMask::new(width, height);

    results.push(KernelResult {
        name: "binarize",
        byte_ns: time_per_frame(n, iters, || {
            for f in &frames {
                binarize_into(f, THRESHOLD, &mut out_b);
                black_box(&out_b);
            }
        }),
        packed_ns: time_per_frame(n, iters, || {
            for f in &frames {
                binarize_packed_into(f, THRESHOLD, &mut out_p);
                black_box(&out_p);
            }
        }),
    });

    results.push(KernelResult {
        name: "erode",
        byte_ns: time_per_frame(n, iters, || {
            for m in &byte_masks {
                erode_into(m, &mut out_b);
                black_box(&out_b);
            }
        }),
        packed_ns: time_per_frame(n, iters, || {
            for p in &packed_masks {
                erode_packed_into(p, &mut out_p);
                black_box(&out_p);
            }
        }),
    });

    results.push(KernelResult {
        name: "dilate",
        byte_ns: time_per_frame(n, iters, || {
            for m in &byte_masks {
                dilate_into(m, &mut out_b);
                black_box(&out_b);
            }
        }),
        packed_ns: time_per_frame(n, iters, || {
            for p in &packed_masks {
                dilate_packed_into(p, &mut out_p);
                black_box(&out_p);
            }
        }),
    });

    results.push(KernelResult {
        name: "largest_component",
        byte_ns: time_per_frame(n, iters, || {
            for m in &byte_masks {
                let c = largest_component_with(m, Connectivity::Eight, &mut out_b, &mut scratch);
                black_box(&c);
            }
        }),
        packed_ns: time_per_frame(n, iters, || {
            for p in &packed_masks {
                let c =
                    largest_component_packed_with(p, Connectivity::Eight, &mut out_p, &mut scratch);
                black_box(&c);
            }
        }),
    });

    let mut contour: Vec<ContourPoint> = Vec::new();
    results.push(KernelResult {
        name: "contour",
        byte_ns: time_per_frame(n, iters, || {
            for b in &byte_blobs {
                trace_outer_contour_into(b, &mut contour);
                black_box(&contour);
            }
        }),
        packed_ns: time_per_frame(n, iters, || {
            for b in &packed_blobs {
                trace_outer_contour_packed_into(b, &mut contour);
                black_box(&contour);
            }
        }),
    });

    // Mask diffs compare consecutive frames of the stream, the way the
    // temporal gate sees them.
    results.push(KernelResult {
        name: "mask_diff",
        byte_ns: time_per_frame(n - 1, iters, || {
            for w in byte_masks.windows(2) {
                black_box(mask_diff_naive(&w[0], &w[1]));
            }
        }),
        packed_ns: time_per_frame(n - 1, iters, || {
            for w in packed_masks.windows(2) {
                black_box(mask_diff_count(&w[0], &w[1]));
            }
        }),
    });

    let mut tiles: Vec<u64> = Vec::new();
    results.push(KernelResult {
        name: "tile_diff",
        byte_ns: time_per_frame(n - 1, iters, || {
            for w in byte_masks.windows(2) {
                mask_tile_diff_naive(&w[0], &w[1], TILE, &mut tiles);
                black_box(&tiles);
            }
        }),
        packed_ns: time_per_frame(n - 1, iters, || {
            for w in packed_masks.windows(2) {
                let s = mask_tile_diff_into(&w[0], &w[1], TILE, &mut tiles);
                black_box((&tiles, s));
            }
        }),
    });

    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bench_produces_positive_timings() {
        let results = run_kernel_bench(128, 96, 1);
        assert_eq!(results.len(), 7);
        for r in &results {
            assert!(r.byte_ns > 0.0 && r.packed_ns > 0.0, "{}", r.name);
            assert!(r.speedup() > 0.0, "{}", r.name);
        }
    }

    #[test]
    fn naive_tile_diff_matches_packed() {
        let frames = sign_stream(130, 96);
        let mut a = BitMask::new(130, 96);
        let mut b = BitMask::new(130, 96);
        binarize_packed_into(&frames[0], THRESHOLD, &mut a);
        binarize_packed_into(&frames[1], THRESHOLD, &mut b);
        let mut ab = Bitmap::new(130, 96);
        let mut bb = Bitmap::new(130, 96);
        binarize_into(&frames[0], THRESHOLD, &mut ab);
        binarize_into(&frames[1], THRESHOLD, &mut bb);

        assert_eq!(mask_diff_naive(&ab, &bb), mask_diff_count(&a, &b));

        let mut naive = Vec::new();
        mask_tile_diff_naive(&ab, &bb, TILE, &mut naive);
        let mut packed = Vec::new();
        mask_tile_diff_into(&a, &b, TILE, &mut packed);
        assert_eq!(naive, packed);
    }
}
