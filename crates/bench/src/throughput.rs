//! Sustained recognition throughput: seed vs byte vs packed vs hybrid.
//!
//! Measures frames per second of the full recognition pipeline at three
//! resolutions, three times per resolution:
//!
//! * **seed** — the pre-optimisation implementation, rebuilt from the
//!   reference oracles kept around for exactly this purpose
//!   ([`hdc_raster::label_components_bfs`], the allocating signature
//!   formula, [`hdc_sax::SaxIndex::best_two_reference`] with the naive
//!   all-shifts rotation distance). Every frame allocates its masks,
//!   contour, signature and rotated words from scratch.
//! * **byte** — [`RecognitionPipeline::recognize_with`] on
//!   [`hdc_vision::KernelPath::Byte`] through one reused [`FrameScratch`]:
//!   the PR 1 optimisation level (FFT rotation matching, MINDIST pruning,
//!   raw-slice raster ops, zero steady-state allocation), one byte per
//!   silhouette pixel.
//! * **packed** — the same pipeline on [`hdc_vision::KernelPath::Packed`]:
//!   bit-packed silhouettes, 64 px per `u64` word, word-parallel kernels.
//! * **hybrid** — [`hdc_vision::KernelPath::Hybrid`] (the default): the
//!   vectorised byte-compare binariser feeding one gather-multiply pack,
//!   then the same word-parallel silhouette kernels.
//!
//! The `bench_recognize` binary runs this and writes `BENCH_recognize.json`
//! so the numbers are committed alongside the code they measure.

use crate::frames::sign_stream;
pub use crate::frames::{benchmark_pipeline, benchmark_pipeline_with, RESOLUTIONS};
use hdc_raster::contour::{contour_centroid, trace_outer_contour};
use hdc_raster::threshold::binarize;
use hdc_raster::{label_components_bfs, Bitmap, Connectivity, GrayImage};
use hdc_timeseries::{resample, TimeSeries};
use hdc_vision::{
    FrameScratch, KernelPath, RecognitionPipeline, SegmentationMode, MIN_CONTOUR_POINTS,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Throughput of one implementation at one resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Frames processed during the timed window.
    pub frames: usize,
    /// Wall-clock seconds of the timed window.
    pub seconds: f64,
    /// Frames that produced an accepted decision (sanity: both
    /// implementations must agree).
    pub decided: usize,
}

impl Throughput {
    /// Sustained frames per second.
    pub fn fps(&self) -> f64 {
        self.frames as f64 / self.seconds
    }

    /// Mean milliseconds per frame.
    pub fn ms_per_frame(&self) -> f64 {
        1000.0 * self.seconds / self.frames as f64
    }
}

/// Seed-vs-byte-vs-packed-vs-hybrid comparison at one resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolutionResult {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// The pre-optimisation implementation.
    pub seed: Throughput,
    /// The scratch-reuse byte-kernel implementation (the PR 1 level).
    pub byte: Throughput,
    /// The scratch-reuse bit-packed implementation.
    pub packed: Throughput,
    /// The scratch-reuse hybrid implementation (byte binarise, pack once,
    /// packed silhouette kernels) — the current default.
    pub hybrid: Throughput,
}

impl ResolutionResult {
    /// Byte-kernel speed-up over the seed.
    pub fn speedup_byte(&self) -> f64 {
        self.byte.fps() / self.seed.fps()
    }

    /// Packed-kernel speed-up over the seed.
    pub fn speedup_packed(&self) -> f64 {
        self.packed.fps() / self.seed.fps()
    }

    /// Packed-kernel speed-up over the byte kernels — the gain of this PR
    /// alone, over the previously committed (PR 1) optimisation level.
    pub fn speedup_packed_vs_byte(&self) -> f64 {
        self.packed.fps() / self.byte.fps()
    }

    /// Hybrid-kernel speed-up over the seed.
    pub fn speedup_hybrid(&self) -> f64 {
        self.hybrid.fps() / self.seed.fps()
    }

    /// Hybrid-kernel speed-up over the previously committed fully-packed
    /// numbers — the gain of swapping the binariser alone.
    pub fn speedup_hybrid_vs_packed(&self) -> f64 {
        self.hybrid.fps() / self.packed.fps()
    }
}

/// The seed's `extract_signature`: fresh allocations and the
/// resample-then-`TimeSeries::znormalized` formula, exactly as before this
/// optimisation pass.
fn seed_signature(mask: &Bitmap, sample_count: usize) -> Option<Vec<f64>> {
    let contour = trace_outer_contour(mask)?;
    if contour.len() < MIN_CONTOUR_POINTS {
        return None;
    }
    let centroid = contour_centroid(&contour)?;
    let raw: Vec<f64> = contour
        .iter()
        .map(|p| p.to_vec2().distance(centroid))
        .collect();
    Some(
        TimeSeries::new(resample(&raw, sample_count))
            .znormalized()
            .into_values(),
    )
}

/// The seed's `recognize`, reassembled from the retained reference oracles:
/// allocating binarisation, BFS component labelling, allocating signature
/// extraction and the unpruned naive-rotation database search (plus the SAX
/// word encode the seed performed per frame). Returns the accepted label
/// index, or `None`.
pub fn recognize_seed(pipeline: &RecognitionPipeline, frame: &GrayImage) -> Option<usize> {
    let cfg = pipeline.config();
    let t = match cfg.segmentation {
        SegmentationMode::Fixed(t) => t,
        SegmentationMode::Otsu => hdc_raster::threshold::otsu_threshold(frame),
    };
    let mask = binarize(frame, t);
    let mask = if cfg.denoise {
        hdc_raster::morphology::dilate_reference(&hdc_raster::morphology::erode_reference(&mask))
    } else {
        mask
    };

    let (labels, comps) = label_components_bfs(&mask, Connectivity::Eight);
    let comp = comps.iter().max_by_key(|c| c.area)?.clone();
    let mut blob = Bitmap::new(mask.width(), mask.height());
    for (dst, &l) in blob.pixels_mut().iter_mut().zip(labels.pixels()) {
        *dst = l == comp.label;
    }
    if comp.area < cfg.min_blob_area {
        return None;
    }

    let series = seed_signature(&blob, cfg.signature_len)?;
    let _word = pipeline.index().encode(&series);
    let (best, runner_up) = pipeline.index().best_two_reference(&series)?;
    let within = best.distance <= cfg.accept_threshold;
    let unambiguous = runner_up
        .map(|r| best.distance <= cfg.ambiguity_ratio * r)
        .unwrap_or(true);
    if within && unambiguous {
        pipeline
            .index()
            .templates()
            .iter()
            .position(|t| t.label == best.label)
    } else {
        None
    }
}

/// Cycles `frames` through `recognize` until at least `min_frames` frames
/// *and* `min_seconds` of wall clock have elapsed (after one untimed
/// warm-up cycle, which is what lets the scratch path reach its
/// allocation-free steady state).
pub fn measure<F: FnMut(&GrayImage) -> bool>(
    frames: &[GrayImage],
    min_frames: usize,
    min_seconds: f64,
    mut recognize: F,
) -> Throughput {
    for frame in frames {
        recognize(frame); // warm-up: buffers grow to frame size here
    }
    let mut processed = 0usize;
    let mut decided = 0usize;
    let start = Instant::now();
    loop {
        for frame in frames {
            if recognize(frame) {
                decided += 1;
            }
            processed += 1;
        }
        let elapsed = start.elapsed().as_secs_f64();
        if processed >= min_frames && elapsed >= min_seconds {
            return Throughput {
                frames: processed,
                seconds: elapsed,
                decided,
            };
        }
    }
}

/// Runs the seed-vs-byte-vs-packed comparison at one resolution. The two
/// pipelines must be calibrated identically and differ only in
/// [`hdc_vision::PipelineConfig::kernels`]; the seed path runs off the byte
/// pipeline's configuration.
pub fn compare_at(
    byte_pipeline: &RecognitionPipeline,
    packed_pipeline: &RecognitionPipeline,
    hybrid_pipeline: &RecognitionPipeline,
    width: u32,
    height: u32,
    min_frames: usize,
    min_seconds: f64,
) -> ResolutionResult {
    let frames = sign_stream(width, height);
    let seed = measure(&frames, min_frames, min_seconds, |f| {
        recognize_seed(byte_pipeline, f).is_some()
    });
    let mut scratch = FrameScratch::new();
    let byte = measure(&frames, min_frames, min_seconds, |f| {
        byte_pipeline
            .recognize_with(&mut scratch, f)
            .decision
            .is_some()
    });
    let packed = measure(&frames, min_frames, min_seconds, |f| {
        packed_pipeline
            .recognize_with(&mut scratch, f)
            .decision
            .is_some()
    });
    let hybrid = measure(&frames, min_frames, min_seconds, |f| {
        hybrid_pipeline
            .recognize_with(&mut scratch, f)
            .decision
            .is_some()
    });
    ResolutionResult {
        width,
        height,
        seed,
        byte,
        packed,
        hybrid,
    }
}

/// Runs the full sweep over [`RESOLUTIONS`].
pub fn run_sweep(min_frames: usize, min_seconds: f64) -> Vec<ResolutionResult> {
    let byte = benchmark_pipeline_with(KernelPath::Byte);
    let packed = benchmark_pipeline_with(KernelPath::Packed);
    let hybrid = benchmark_pipeline_with(KernelPath::Hybrid);
    RESOLUTIONS
        .iter()
        .map(|&(w, h)| compare_at(&byte, &packed, &hybrid, w, h, min_frames, min_seconds))
        .collect()
}

/// Renders the sweep as the JSON document committed at
/// `BENCH_recognize.json` (hand-rolled: the workspace intentionally has no
/// JSON-serialisation dependency).
pub fn to_json(results: &[ResolutionResult], kernels: &[crate::kernels::KernelResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"RecognitionPipeline sustained recognition throughput\",\n");
    s.push_str("  \"protocol\": {\n");
    s.push_str("    \"stream\": \"3 marshalling signs x 3 azimuths (0/10/20 deg), altitude 5 m, distance 3 m\",\n");
    s.push_str("    \"seed\": \"allocating binarize + BFS labelling + allocating signature + unpruned naive-rotation best_two (reference oracles)\",\n");
    s.push_str("    \"byte\": \"recognize_with(FrameScratch), KernelPath::Byte: raw-slice raster ops, MINDIST-pruned search, FFT rotation distance, zero steady-state allocation (the PR 1 optimisation level)\",\n");
    s.push_str("    \"packed\": \"recognize_with(FrameScratch), KernelPath::Packed: bit-packed silhouettes (64 px per u64 word), word-parallel binarize/morphology/labelling/contour kernels\",\n");
    s.push_str("    \"hybrid\": \"recognize_with(FrameScratch), KernelPath::Hybrid (default): vectorised byte-compare binarise + one gather-multiply pack, then the word-parallel silhouette kernels\",\n");
    s.push_str("    \"timing\": \"one untimed warm-up cycle, then whole cycles until the frame and wall-clock floors are both met\",\n");
    s.push_str("    \"speedup_packed_vs_byte\": \"the gain of the packed kernels alone over the previously committed byte-kernel numbers\",\n");
    s.push_str("    \"speedup_hybrid_vs_packed\": \"the gain of the hybrid binariser alone over the previously committed fully-packed numbers\"\n");
    s.push_str("  },\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\n      \"width\": {}, \"height\": {},\n      \"seed_fps\": {:.2}, \"seed_ms_per_frame\": {:.3}, \"seed_frames\": {}, \"seed_decided\": {},\n      \"byte_fps\": {:.2}, \"byte_ms_per_frame\": {:.3}, \"byte_frames\": {}, \"byte_decided\": {},\n      \"packed_fps\": {:.2}, \"packed_ms_per_frame\": {:.3}, \"packed_frames\": {}, \"packed_decided\": {},\n      \"hybrid_fps\": {:.2}, \"hybrid_ms_per_frame\": {:.3}, \"hybrid_frames\": {}, \"hybrid_decided\": {},\n      \"speedup_byte\": {:.2}, \"speedup_packed\": {:.2}, \"speedup_packed_vs_byte\": {:.2}, \"speedup_hybrid\": {:.2}, \"speedup_hybrid_vs_packed\": {:.2}\n    }}{}\n",
            r.width,
            r.height,
            r.seed.fps(),
            r.seed.ms_per_frame(),
            r.seed.frames,
            r.seed.decided,
            r.byte.fps(),
            r.byte.ms_per_frame(),
            r.byte.frames,
            r.byte.decided,
            r.packed.fps(),
            r.packed.ms_per_frame(),
            r.packed.frames,
            r.packed.decided,
            r.hybrid.fps(),
            r.hybrid.ms_per_frame(),
            r.hybrid.frames,
            r.hybrid.decided,
            r.speedup_byte(),
            r.speedup_packed(),
            r.speedup_packed_vs_byte(),
            r.speedup_hybrid(),
            r.speedup_hybrid_vs_packed(),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    if kernels.is_empty() {
        s.push_str("  ]\n}\n");
    } else {
        s.push_str("  ],\n");
        s.push_str("  \"kernels\": [\n");
        for (i, k) in kernels.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{ \"kernel\": \"{}\", \"byte_ns_per_frame\": {:.0}, \"packed_ns_per_frame\": {:.0}, \"speedup\": {:.2} }}{}",
                k.name,
                k.byte_ns,
                k.packed_ns,
                k.speedup(),
                if i + 1 < kernels.len() { "," } else { "" }
            );
        }
        s.push_str("  ]\n}\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_and_optimised_agree_on_decisions() {
        let frames = sign_stream(320, 240);
        for kernels in [KernelPath::Byte, KernelPath::Packed, KernelPath::Hybrid] {
            let pipeline = benchmark_pipeline_with(kernels);
            let mut scratch = FrameScratch::new();
            for (i, frame) in frames.iter().enumerate() {
                let seed = recognize_seed(&pipeline, frame);
                let opt = pipeline.recognize_with(&mut scratch, frame);
                let opt_idx = opt.decision.map(|label| {
                    pipeline
                        .index()
                        .templates()
                        .iter()
                        .position(|t| t.label == label)
                        .unwrap()
                });
                assert_eq!(seed, opt_idx, "frame {i} ({kernels:?}) decision diverged");
            }
        }
    }

    #[test]
    fn measure_counts_whole_cycles() {
        let pipeline = benchmark_pipeline();
        let frames = sign_stream(320, 240);
        let mut scratch = FrameScratch::new();
        let t = measure(&frames, 1, 0.0, |f| {
            pipeline.recognize_with(&mut scratch, f).decision.is_some()
        });
        assert_eq!(t.frames, frames.len(), "one cycle satisfies both floors");
        assert!(t.decided > 0, "frontal frames must be recognised");
        assert!(t.fps() > 0.0 && t.ms_per_frame() > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let t = Throughput {
            frames: 90,
            seconds: 1.5,
            decided: 80,
        };
        let r = ResolutionResult {
            width: 320,
            height: 240,
            seed: t,
            byte: t,
            packed: t,
            hybrid: t,
        };
        let k = crate::kernels::KernelResult {
            name: "binarize",
            byte_ns: 1000.0,
            packed_ns: 250.0,
        };
        let json = to_json(&[r], &[k]);
        assert!(json.contains("\"width\": 320"));
        assert!(json.contains("\"speedup_packed_vs_byte\": 1.00"));
        assert!(json.contains("\"speedup_hybrid_vs_packed\": 1.00"));
        assert!(json.contains("\"kernel\": \"binarize\""));
        assert!(json.contains("\"speedup\": 4.00"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let no_kernels = to_json(&[r], &[]);
        assert!(!no_kernels.contains("\"kernels\""));
        assert_eq!(
            no_kernels.matches('{').count(),
            no_kernels.matches('}').count()
        );
    }
}
