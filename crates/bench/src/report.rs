//! Small text-table helpers for experiment reports.

use std::fmt::Write;

/// A plain-text table builder with right-aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with blanks).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:>width$}", cell, width = widths[i]);
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision, rendering NaN as `-`.
pub fn num(v: f64, prec: usize) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.prec$}")
    }
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[2].ends_with("2"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn number_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::NAN, 2), "-");
        assert_eq!(pct(0.5), "50%");
    }
}
