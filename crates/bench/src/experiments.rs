//! The per-experiment implementations (E1–E12).
//!
//! Each function regenerates one of the paper's tables/figures (or
//! quantitative claims) and returns a plain-text report. The mapping to the
//! paper is documented in `DESIGN.md`; paper-vs-measured numbers are
//! archived in `EXPERIMENTS.md`.

use crate::report::{num, pct, Table};
use hdc_core::{
    CollaborationSession, LogEntry, ProtocolAction, Role, SessionConfig, SessionOutcome,
};
use hdc_drone::{
    Drone, DroneConfig, DroneEvent, FlightPattern, LedColor, LedMode, LedRing, VerticalAnimation,
    VerticalArray,
};
use hdc_figure::{render_pose, render_sign, MarshallingSign, Pose, ViewSpec};
use hdc_raster::noise;
use hdc_sax::{min_rotated_mindist, tuning::grid_search, SaxParams};
use hdc_vision::classifiers::{
    DtwClassifier, HuClassifier, SaxClassifier, SignClassifier, ZoningClassifier,
};
use hdc_vision::{FrameBudget, PipelineConfig, RecognitionPipeline};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::Instant;

/// Identifier of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExperimentId(pub u8);

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// All experiment ids with one-line descriptions.
pub fn all_experiments() -> Vec<(ExperimentId, &'static str)> {
    vec![
        (
            ExperimentId(1),
            "Figure 4: 'No' at 0 vs 65 degrees - series, words, decisions",
        ),
        (
            ExperimentId(2),
            "altitude window of recognition (paper: 2-5 m)",
        ),
        (
            ExperimentId(3),
            "azimuth sweep and dead angle (paper: erratic > 65 deg, ~100 deg dead)",
        ),
        (
            ExperimentId(4),
            "recognition latency and frame-rate budgets (paper: 38/27 ms, 30/60 fps)",
        ),
        (
            ExperimentId(5),
            "uniqueness of the three signs' SAX strings",
        ),
        (
            ExperimentId(6),
            "Figure 1: LED ring navigation colours and danger mode",
        ),
        (
            ExperimentId(7),
            "Figure 2: landing pattern timeline (rotors off before lights out)",
        ),
        (
            ExperimentId(8),
            "Figure 3: negotiation traces and outcome statistics by role",
        ),
        (
            ExperimentId(9),
            "vertical LED array confusion (why it was discarded)",
        ),
        (
            ExperimentId(10),
            "tuning PAA segments and alphabet size (paper ref [22])",
        ),
        (
            ExperimentId(11),
            "SAX vs classical baselines: accuracy and cost",
        ),
        (
            ExperimentId(12),
            "safety fault injection: all-red + landing invariants",
        ),
        (
            ExperimentId(13),
            "extension: RGB status colours vs the vertical array (paper future work)",
        ),
        (
            ExperimentId(14),
            "extension: IMU-derived flight state for honest lights (paper open issue)",
        ),
        (
            ExperimentId(15),
            "extension: minimum-sign-set economics - database size vs lookup cost",
        ),
        (
            ExperimentId(16),
            "extension: dynamic wave-off gesture detection (paper future work)",
        ),
        (
            ExperimentId(17),
            "extension: fleet scaling - makespan and energy vs drone count",
        ),
        (
            ExperimentId(18),
            "extension: facing-error sensitivity - dead angle to protocol coupling",
        ),
        (
            ExperimentId(19),
            "extension: anthropometric robustness - other bodies vs the calibrated templates",
        ),
    ]
}

/// Runs one experiment by id, returning its report.
///
/// Returns `None` for an unknown id.
pub fn run_experiment(id: ExperimentId) -> Option<String> {
    Some(match id.0 {
        1 => e1_fig4_no_sign(),
        2 => e2_altitude_window(),
        3 => e3_azimuth_dead_angle(),
        4 => e4_latency(),
        5 => e5_uniqueness(),
        6 => e6_led_ring(),
        7 => e7_landing_pattern(),
        8 => e8_negotiation(),
        9 => e9_vertical_array(),
        10 => e10_tuning(),
        11 => e11_baselines(),
        12 => e12_safety_injection(),
        13 => e13_rgb_vs_vertical(),
        14 => e14_imu_flight_state(),
        15 => e15_vocabulary_economics(),
        16 => e16_wave_off(),
        17 => e17_fleet_scaling(),
        18 => e18_facing_sensitivity(),
        19 => e19_anthropometric_robustness(),
        _ => return None,
    })
}

fn calibrated_pipeline() -> RecognitionPipeline {
    let mut p = RecognitionPipeline::new(PipelineConfig::default());
    p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    p
}

/// E1 — Figure 4: the "No" sign at relative azimuth 0° and 65°.
pub fn e1_fig4_no_sign() -> String {
    let pipeline = calibrated_pipeline();
    let mut out = String::from(
        "E1 | Figure 4: 'No' at relative azimuth 0 deg and 65 deg (altitude 5 m, distance 3 m)\n\n",
    );
    let mut table = Table::new([
        "azimuth",
        "contour px",
        "SAX word",
        "best",
        "distance",
        "decision",
    ]);
    let mut series_rows: Vec<(f64, Vec<f64>)> = Vec::new();
    for az in [0.0, 65.0] {
        let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(az, 5.0, 3.0));
        let r = pipeline.recognize(&frame);
        let sig = r.signature.as_ref().expect("figure visible");
        table.row([
            format!("{az:.0} deg"),
            sig.contour_len.to_string(),
            r.word.as_ref().map(|w| w.to_string()).unwrap_or_default(),
            r.best.as_ref().map(|m| m.label.clone()).unwrap_or_default(),
            num(r.best.as_ref().map(|m| m.distance).unwrap_or(f64::NAN), 3),
            r.decision.clone().unwrap_or_else(|| "(rejected)".into()),
        ]);
        series_rows.push((az, sig.series.clone()));
    }
    out.push_str(&table.render());
    out.push_str(
        "\nFigure 4 (bottom): the two centroid-distance time series (16-sample PAA view)\n",
    );
    let mut series_table = Table::new(["frame", "0 deg", "65 deg"]);
    let paa0 = hdc_timeseries::paa(&series_rows[0].1, 16);
    let paa65 = hdc_timeseries::paa(&series_rows[1].1, 16);
    for i in 0..16 {
        series_table.row([i.to_string(), num(paa0[i], 3), num(paa65[i], 3)]);
    }
    out.push_str(&series_table.render());
    out.push_str(
        "\nPaper: both views identified as 'No' from the 0 deg canonical reference.\n\
         Measured: the frontal view matches exactly; 65 deg exceeds our figure's\n\
         critical azimuth (~32 deg, see E3) and is rejected — the degradation\n\
         mechanism (foreshortening of the frontal-plane arms) is reproduced, the\n\
         crossover angle of the capsule body sits earlier than the human body's.\n",
    );
    out
}

/// E2 — the altitude recognition window.
pub fn e2_altitude_window() -> String {
    let pipeline = calibrated_pipeline();
    let mut out = String::from(
        "E2 | altitude window, sign 'No', azimuth 0 deg, horizontal distance 3 m,\n     canonical reference at 5 m (as in Figure 4)\n\n",
    );
    let mut table = Table::new(["altitude", "best", "distance", "decision"]);
    let mut window: Vec<f64> = Vec::new();
    for alt10 in (10..=100).step_by(5) {
        let alt = alt10 as f64 / 10.0;
        let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, alt, 3.0));
        let r = pipeline.recognize(&frame);
        let ok = r.decision.as_deref() == Some("No");
        if ok {
            window.push(alt);
        }
        table.row([
            format!("{alt:.1} m"),
            r.best.as_ref().map(|m| m.label.clone()).unwrap_or_default(),
            num(r.best.as_ref().map(|m| m.distance).unwrap_or(f64::NAN), 3),
            if ok {
                "No".into()
            } else {
                "(rejected)".to_string()
            },
        ]);
    }
    out.push_str(&table.render());
    let lo = window.first().copied().unwrap_or(f64::NAN);
    let hi = window.last().copied().unwrap_or(f64::NAN);
    out.push_str(&format!(
        "\nMeasured window: {lo:.1}-{hi:.1} m (paper: 2-5 m with its camera/body geometry).\n\
         Same shape: a bounded window around the canonical altitude; outside it the\n\
         perspective deformation exceeds the calibrated margin and the frame is rejected.\n",
    ));
    out
}

/// E3 — azimuth sweep, dead angle, and the "erratic" zone under jitter.
pub fn e3_azimuth_dead_angle() -> String {
    let pipeline = calibrated_pipeline();
    let mut rng = SmallRng::seed_from_u64(31);
    let trials = 10;
    let mut out = String::from(
        "E3 | azimuth sweep, sign 'No', altitude 5 m, distance 3 m,\n     10 jittered/noisy trials per angle (pose jitter 0.05 rad, sensor noise sigma 6)\n\n",
    );
    let mut table = Table::new(["azimuth", "success", "wrong", "rejected", "verdict"]);
    let mut critical = 0.0f64;
    for az in (0..=90).step_by(5) {
        let mut success = 0;
        let mut wrong = 0;
        for _ in 0..trials {
            let pose = Pose::for_sign(MarshallingSign::No).jittered(0.05, &mut rng);
            let mut frame = render_pose(pose, &ViewSpec::paper_default(az as f64, 5.0, 3.0));
            noise::add_gaussian(&mut frame, 6.0, &mut rng);
            match calibrated_decision(&pipeline, &frame) {
                Some(l) if l == "No" => success += 1,
                Some(_) => wrong += 1,
                None => {}
            }
        }
        let rejected = trials - success - wrong;
        let verdict = if success == trials {
            "reliable"
        } else if success > 0 {
            "erratic"
        } else {
            "dead"
        };
        if success == trials {
            critical = az as f64;
        }
        table.row([
            format!("{az} deg"),
            format!("{success}/{trials}"),
            wrong.to_string(),
            rejected.to_string(),
            verdict.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let dead = 360.0 - 4.0 * critical;
    out.push_str(&format!(
        "\nCritical azimuth (last fully reliable): {critical:.0} deg (paper: 65 deg)\n\
         Dead angle (silhouette is front/back symmetric): {dead:.0} deg of 360\n\
         (paper: ~100 deg). The paper's qualitative claims reproduce: a reliable\n\
         frontal cone, an erratic transition band, and an unusable side zone whose\n\
         SAX strings do not indicate a recovery direction.\n",
    ));
    out
}

fn calibrated_decision(
    pipeline: &RecognitionPipeline,
    frame: &hdc_raster::GrayImage,
) -> Option<String> {
    pipeline.recognize(frame).decision
}

/// E4 — recognition latency and the 30/60 fps bars.
pub fn e4_latency() -> String {
    let pipeline = calibrated_pipeline();
    let mut out = String::from(
        "E4 | recognition latency (median of 50 runs per frame) and frame budgets\n\n",
    );
    let mut table = Table::new([
        "azimuth",
        "segment",
        "blob",
        "contour+sig",
        "classify",
        "total",
        "fps",
        "30fps?",
        "60fps?",
    ]);
    for az in [0.0, 65.0] {
        let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(az, 5.0, 3.0));
        let mut totals: Vec<u64> = Vec::new();
        let mut last = None;
        for _ in 0..50 {
            let r = pipeline.recognize(&frame);
            totals.push(r.timings.total_us());
            last = Some(r.timings);
        }
        totals.sort_unstable();
        let median = totals[totals.len() / 2];
        let t = last.unwrap();
        let fps = 1_000_000.0 / median as f64;
        table.row([
            format!("{az:.0} deg"),
            format!("{} us", t.segment_us),
            format!("{} us", t.component_us),
            format!("{} us", t.contour_us + t.signature_us),
            format!("{} us", t.classify_us),
            format!("{median} us"),
            num(fps, 0),
            if FrameBudget::thirty_fps().budget_us() >= median {
                "yes".into()
            } else {
                "no".to_string()
            },
            if FrameBudget::sixty_fps().budget_us() >= median {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper: 38 ms at 0 deg, 27 ms at 65 deg (unoptimised Python/OpenCV on an\n\
         i7-7660U), with the expectation that native code reaches 30 fps and 60 fps\n\
         with offloading. Measured: the Rust pipeline clears both budgets by a wide\n\
         margin. The paper's oblique-cheaper ordering survives in the contour and\n\
         signature stages (the 65 deg contour is ~40% shorter, see E1); the\n\
         end-to-end totals sit so close that fixed-resolution segmentation and\n\
         labelling dominate and the gap falls into scheduler noise. See also the\n\
         Criterion bench fig4_no_sign.\n",
    );
    out
}

/// E5 — uniqueness of the three signs' SAX strings.
pub fn e5_uniqueness() -> String {
    let pipeline = calibrated_pipeline();
    let mut out =
        String::from("E5 | uniqueness of the sign signatures (canonical 0 deg views)\n\n");
    let templates = pipeline.index().templates();
    let mut words = Table::new(["sign", "SAX word"]);
    for t in templates {
        words.row([t.label.clone(), t.word.to_string()]);
    }
    out.push_str(&words.render());
    out.push_str("\nPairwise distances (lower triangle: rotation-invariant MINDIST | exact):\n\n");
    let mut table = Table::new(["pair", "MINDIST", "exact", "margin vs threshold"]);
    let threshold = pipeline.config().accept_threshold;
    let n = pipeline.config().signature_len;
    for i in 0..templates.len() {
        for j in (i + 1)..templates.len() {
            let (lb, _) = min_rotated_mindist(&templates[i].word, &templates[j].word, n);
            let (d, _) = hdc_timeseries::min_rotated_euclidean(
                &templates[i].series,
                &templates[j].series,
                1,
            )
            .expect("canonical series");
            table.row([
                format!("{} / {}", templates[i].label, templates[j].label),
                num(lb, 3),
                num(d, 3),
                format!("{:.2}x", d / threshold),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper: 'Preliminary results also suggest that the strings retrievable from\n\
         the three signs are unique.' Measured: all three words differ, every exact\n\
         inter-sign distance exceeds the acceptance threshold, so no sign can be\n\
         mistaken for another at the canonical geometry.\n",
    );
    out
}

/// E6 — Figure 1: the LED ring.
pub fn e6_led_ring() -> String {
    let mut out = String::from("E6 | Figure 1: all-round ring, navigation vs danger\n\n");
    let ring = LedRing::new(LedMode::Navigation);
    out.push_str(&format!(
        "navigation snapshot (nose, clockwise): {}\n",
        ring.snapshot()
    ));
    out.push_str(&format!(
        "danger snapshot                      : {}\n",
        LedRing::new(LedMode::Danger).snapshot()
    ));
    out.push_str(&format!(
        "fail-safe default mode               : {:?}\n\n",
        LedRing::default().mode()
    ));
    out.push_str("colour an observer sees vs drone heading (observer due north of drone):\n\n");
    let mut table = Table::new(["drone heading", "observer sees", "meaning"]);
    for heading_deg in (0..360).step_by(45) {
        let heading = (heading_deg as f64).to_radians();
        let color = ring.color_toward(heading, std::f64::consts::FRAC_PI_2);
        let meaning = match color {
            LedColor::Red => "observer on port side",
            LedColor::Green => "observer on starboard side",
            LedColor::White => "observer ahead/astern",
            LedColor::Off => "off",
        };
        table.row([
            format!("{heading_deg} deg"),
            color.to_string(),
            meaning.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper: 'Depending on the direction of controlled flight, the position of\n\
         red, green and white lighting will change.' Measured: the observed colour\n\
         changes deterministically with the relative bearing, and the safety trigger\n\
         forces the all-red state (the default setting).\n",
    );
    out
}

/// E7 — Figure 2: the landing pattern timeline.
pub fn e7_landing_pattern() -> String {
    let mut out = String::from(
        "E7 | Figure 2: landing — descend (1), touch down (2), rotors off then lights out (3)\n\n",
    );
    let mut drone = Drone::new(DroneConfig::default());
    drone.execute_pattern(FlightPattern::TakeOff {
        target_altitude: 5.0,
    });
    while drone.is_executing() {
        drone.tick(0.05);
    }
    drone.drain_events();
    let t0 = drone.time();
    drone.execute_pattern(FlightPattern::Landing);
    let mut table = Table::new(["t", "altitude", "rotors", "ring"]);
    let mut events: Vec<(f64, DroneEvent)> = Vec::new();
    while drone.is_executing() {
        drone.tick(0.05);
        for e in drone.drain_events() {
            events.push((drone.time() - t0, e));
        }
        let t = drone.time() - t0;
        if ((t / 0.05).round() as u64).is_multiple_of(20) || !drone.is_executing() {
            table.row([
                format!("{t:.1} s"),
                format!("{:.2} m", drone.state().position.z),
                if drone.state().rotors_on {
                    "on".to_string()
                } else {
                    "off".into()
                },
                format!("{:?}", drone.ring().mode()),
            ]);
        }
    }
    for e in drone.drain_events() {
        events.push((drone.time() - t0, e));
    }
    out.push_str(&table.render());
    out.push_str("\nevent order:\n");
    for (t, e) in &events {
        out.push_str(&format!("  [{t:.2} s] {e:?}\n"));
    }
    let rotors_idx = events
        .iter()
        .position(|(_, e)| *e == DroneEvent::RotorsStopped);
    let lights_idx = events.iter().position(|(_, e)| *e == DroneEvent::LightsOut);
    out.push_str(&format!(
        "\ninvariant 'rotors stop before lights out': {}\n",
        match (rotors_idx, lights_idx) {
            (Some(r), Some(l)) if r < l => "holds",
            _ => "VIOLATED",
        }
    ));
    out
}

/// E8 — Figure 3: negotiation traces and per-role outcome statistics.
pub fn e8_negotiation() -> String {
    let mut out = String::from("E8 | Figure 3: negotiated access (closed loop: motion -> human -> camera -> SAX -> protocol)\n\n");

    // one full YES trace
    let mut session = CollaborationSession::new(SessionConfig::for_role(Role::Supervisor, true, 3));
    let outcome = session.run();
    out.push_str(&format!(
        "--- supervisor, consents (outcome: {outcome}) ---\n"
    ));
    for (t, e) in session.log().entries() {
        // keep the trace readable: drop the per-frame no-sign lines
        if matches!(e, LogEntry::Recognized(None)) {
            continue;
        }
        out.push_str(&format!("[{t:7.2}s] {e}\n"));
    }

    // one full NO trace
    let mut session =
        CollaborationSession::new(SessionConfig::for_role(Role::Supervisor, false, 4));
    let outcome = session.run();
    out.push_str(&format!(
        "\n--- supervisor, refuses (outcome: {outcome}) ---\n"
    ));
    for (t, e) in session.log().entries() {
        if matches!(e, LogEntry::Recognized(None)) {
            continue;
        }
        out.push_str(&format!("[{t:7.2}s] {e}\n"));
    }

    // outcome statistics by role
    out.push_str("\noutcome statistics (10 sessions per role, consent intended):\n\n");
    let mut table = Table::new([
        "role",
        "granted",
        "denied",
        "abandoned",
        "aborted",
        "mean time",
    ]);
    for role in Role::ALL {
        let mut counts = [0u32; 4];
        let mut total_t = 0.0;
        let runs = 10;
        for seed in 0..runs {
            let mut s = CollaborationSession::new(SessionConfig::for_role(role, true, 50 + seed));
            let o = s.run();
            total_t += s.time();
            match o {
                SessionOutcome::Granted => counts[0] += 1,
                SessionOutcome::Denied => counts[1] += 1,
                SessionOutcome::Abandoned => counts[2] += 1,
                SessionOutcome::Aborted => counts[3] += 1,
                SessionOutcome::StillRunning => {}
            }
        }
        table.row([
            role.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
            format!("{:.0} s", total_t / runs as f64),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nThe training gradient the user stories predict appears in the loop:\n\
         supervisors nearly always resolve the negotiation, visitors stall it —\n\
         partly by ignoring the poke, partly by facing the drone so poorly that\n\
         their signs fall into the recognition dead angle (E3).\n",
    );
    out
}

/// E9 — the discarded vertical array: direction-reading accuracy.
pub fn e9_vertical_array() -> String {
    let mut out = String::from(
        "E9 | vertical take-off/landing array: observer accuracy vs corruption\n     (3 glances, 0.45 s apart, per trial; 400 trials per cell)\n\n",
    );
    let mut rng = SmallRng::seed_from_u64(9);
    let mut table = Table::new([
        "flip prob",
        "take-off read correctly",
        "landing read correctly",
    ]);
    for flip in [0.0, 0.05, 0.1, 0.2, 0.3, 0.4] {
        let mut acc = [0usize; 2];
        let trials = 400;
        for (i, anim) in [VerticalAnimation::TakeOff, VerticalAnimation::Landing]
            .into_iter()
            .enumerate()
        {
            let arr = VerticalArray::new(anim);
            for _ in 0..trials {
                if arr.observe_direction(3, 0.45, flip, &mut rng) == Some(anim) {
                    acc[i] += 1;
                }
            }
        }
        table.row([
            num(flip, 2),
            pct(acc[0] as f64 / 400.0),
            pct(acc[1] as f64 / 400.0),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper (user feedback): the animations 'are difficult to distinguish, do\n\
         not serve clarity, indeed serve to confuse, and so will be discarded'.\n\
         Measured: with casual glances the sweep direction aliases — under even\n\
         modest corruption the reading collapses and can invert (systematically\n\
         wrong, worse than chance), which is exactly the confusion users reported.\n",
    );
    out
}

/// E10 — tuning word length and alphabet size.
///
/// Evaluates the *string-level* matcher (the paper's preliminary
/// implementation compares SAX strings), where `(w, a)` genuinely matter:
/// acceptance uses the rotation-invariant MINDIST between words, thresholded
/// at a fraction of the smallest inter-template word distance.
pub fn e10_tuning() -> String {
    let mut out = String::from(
        "E10 | tuning PAA segments (w) and alphabet size (a) of the string-level\n      matcher: per-configuration usability and critical azimuth (sign 'No')\n\n",
    );
    let segments = [4usize, 8, 16, 32];
    let alphabets = [3u8, 4, 6, 8, 12];
    let pipeline = calibrated_pipeline(); // only for signature extraction

    // signature per azimuth (computed once)
    let azimuths: Vec<f64> = (0..=60).step_by(5).map(|a| a as f64).collect();
    let queries: Vec<(f64, Vec<f64>)> = azimuths
        .iter()
        .map(|az| {
            let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(*az, 5.0, 3.0));
            (*az, pipeline.signature_of(&frame).expect("visible").series)
        })
        .collect();
    let canonical: Vec<(String, Vec<f64>)> = MarshallingSign::ALL
        .iter()
        .map(|s| {
            let frame = render_sign(*s, &ViewSpec::paper_default(0.0, 5.0, 3.0));
            (
                s.label().to_string(),
                pipeline.signature_of(&frame).expect("visible").series,
            )
        })
        .collect();

    // word-level evaluation: returns (usable, min inter-template word dist,
    // critical azimuth) for a configuration
    let eval = |params: SaxParams| -> (bool, f64, f64) {
        let mut idx = hdc_sax::SaxIndex::new(params, 128);
        for (label, series) in &canonical {
            idx.insert(label.clone(), series);
        }
        let templates = idx.templates();
        let mut min_lb = f64::INFINITY;
        for i in 0..templates.len() {
            for j in (i + 1)..templates.len() {
                let (d, _) = min_rotated_mindist(&templates[i].word, &templates[j].word, 128);
                min_lb = min_lb.min(d);
            }
        }
        if min_lb <= 1e-9 {
            return (false, min_lb, 0.0); // templates collide at word level
        }
        let threshold = 0.9 * min_lb;
        let mut critical = 0.0;
        for (az, series) in &queries {
            let word = idx.encode(series);
            let mut best: Option<(&str, f64)> = None;
            for t in templates {
                let (d, _) = min_rotated_mindist(&word, &t.word, 128);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((&t.label, d));
                }
            }
            let ok = matches!(best, Some((l, d)) if l == "No" && d <= threshold);
            if ok && critical + 5.0 >= *az {
                critical = *az;
            }
        }
        (true, min_lb, critical)
    };

    let mut table = Table::new([
        "w",
        "a",
        "usable",
        "inter-template word dist",
        "critical azimuth",
    ]);
    for w in segments {
        for a in alphabets {
            let (usable, min_lb, crit) = eval(SaxParams::new(w, a).expect("valid grid"));
            table.row([
                w.to_string(),
                a.to_string(),
                if usable {
                    "yes".to_string()
                } else {
                    "no (collide)".into()
                },
                num(min_lb, 3),
                if usable {
                    format!("{crit:.0} deg")
                } else {
                    "-".into()
                },
            ]);
        }
    }
    out.push_str(&table.render());
    let results = grid_search(&segments, &alphabets, |p| {
        let (usable, _, crit) = eval(p);
        if usable {
            crit
        } else {
            -1.0
        }
    });
    let best = &results[0];
    out.push_str(&format!(
        "\nBest configuration by the sweep: w={}, a={} (critical azimuth {:.0} deg).\n\
         Short words over tiny alphabets collide (MINDIST between the three signs'\n\
         words is 0 — adjacent symbols are free), so they cannot support an\n\
         acceptance threshold at all; larger (w, a) separate the signs but no\n\
         configuration rescues the oblique views. Paper (ref [22]): 'even with\n\
         tuning of the piecewise aggregation and alphabet size recognition appears\n\
         erratic' — reproduced: the dead angle is geometric, not a symbolisation\n\
         artefact.\n",
        best.segments, best.alphabet, best.score
    ));
    out
}

/// E11 — SAX vs the classical baselines.
pub fn e11_baselines() -> String {
    let mut out = String::from(
        "E11 | SAX vs baselines: closed-set accuracy under pose jitter + noise\n      (20 trials x 3 signs per cell) and per-frame classification cost\n\n",
    );
    let make: Vec<Box<dyn Fn() -> Box<dyn SignClassifier>>> = vec![
        Box::new(|| Box::new(SaxClassifier::new(SaxParams::default(), 128))),
        Box::new(|| Box::new(DtwClassifier::new(128, 8, 8))),
        Box::new(|| Box::new(HuClassifier::new())),
        Box::new(|| Box::new(ZoningClassifier::new(4))),
    ];

    let mut table = Table::new([
        "classifier",
        "frontal acc",
        "20 deg acc",
        "rotated-frame acc",
        "cost/frame",
    ]);
    for factory in &make {
        let mut c = factory();
        for sign in MarshallingSign::ALL {
            let frame = render_sign(sign, &ViewSpec::paper_default(0.0, 5.0, 3.0));
            let mask = hdc_raster::threshold::binarize(&frame, 128);
            assert!(c.train(sign.label(), &mask));
        }
        let mut rng = SmallRng::seed_from_u64(111);
        let run_cell = |az: f64, rotate: bool, rng: &mut SmallRng| -> f64 {
            let mut ok = 0;
            let trials = 20;
            for _ in 0..trials {
                for sign in MarshallingSign::ALL {
                    let pose = Pose::for_sign(sign).jittered(0.04, rng);
                    let mut frame = render_pose(pose, &ViewSpec::paper_default(az, 5.0, 3.0));
                    noise::add_gaussian(&mut frame, 5.0, rng);
                    let mut mask = hdc_raster::threshold::binarize(&frame, 128);
                    if rotate {
                        mask = rotate_mask_90(&mask);
                    }
                    if c.classify(&mask)
                        .map(|r| r.label == sign.label())
                        .unwrap_or(false)
                    {
                        ok += 1;
                    }
                }
            }
            ok as f64 / (trials * 3) as f64
        };
        let frontal = run_cell(0.0, false, &mut rng);
        let oblique = run_cell(20.0, false, &mut rng);
        let rotated = run_cell(0.0, true, &mut rng);
        // cost
        let frame = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        let mask = hdc_raster::threshold::binarize(&frame, 128);
        let t0 = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            let _ = c.classify(&mask);
        }
        let cost_us = t0.elapsed().as_micros() as f64 / reps as f64;
        table.row([
            c.name().to_string(),
            pct(frontal),
            pct(oblique),
            pct(rotated),
            format!("{cost_us:.0} us"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nShape of the paper's argument: the contour-SAX approach keeps the accuracy\n\
         of the expensive sequence matcher (DTW) at a fraction of its cost, remains\n\
         rotation invariant where the cheap zoning grid collapses on rotated frames,\n\
         and separates the articulated signs better than global Hu moments.\n",
    );
    out
}

/// Rotates a mask by 90° (image-plane rotation for the rotation-invariance column).
fn rotate_mask_90(mask: &hdc_raster::Bitmap) -> hdc_raster::Bitmap {
    let w = mask.width();
    let h = mask.height();
    let mut out = hdc_raster::Bitmap::new(h, w);
    for (x, y, v) in mask.iter() {
        if v {
            out.set(h - 1 - y, x, true);
        }
    }
    out
}

/// E12 — safety fault injection.
pub fn e12_safety_injection() -> String {
    let mut out = String::from(
        "E12 | safety fault injection: at a random time in each session a safety\n      function fires; every run must end all-red, landed, without area entry\n\n",
    );
    let mut table = Table::new([
        "seed",
        "fired at",
        "state after",
        "ring",
        "grounded",
        "entered w/o yes",
    ]);
    let mut all_hold = true;
    for seed in 0..10u64 {
        let mut session =
            CollaborationSession::new(SessionConfig::for_role(Role::Worker, true, seed));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD);
        let fire_at = rng.gen_range(2.0..25.0);
        let mut fired = false;
        while !session.is_done() && session.time() < 120.0 {
            if !fired && session.time() >= fire_at {
                session.inject_safety("injected fault");
                fired = true;
            }
            session.step();
        }
        let drone = session.drone();
        let entered_before_yes = session
            .log()
            .first_time(|e| *e == LogEntry::Action(ProtocolAction::EnterArea))
            .map(|t_enter| {
                let t_yes = session
                    .log()
                    .first_time(|e| matches!(e, LogEntry::Recognized(Some(l)) if l == "Yes"));
                t_yes.map(|ty| ty > t_enter).unwrap_or(true)
            })
            .unwrap_or(false);
        let ring_red = drone.ring().mode() == LedMode::Danger;
        let grounded = drone.state().is_grounded();
        // sessions that completed before the fault fired end in normal states
        let holds = if fired {
            ring_red && grounded && !entered_before_yes
        } else {
            !entered_before_yes
        };
        all_hold &= holds;
        table.row([
            seed.to_string(),
            if fired {
                format!("{fire_at:.1} s")
            } else {
                "(finished first)".into()
            },
            session.state().to_string(),
            format!("{:?}", drone.ring().mode()),
            if grounded {
                "yes".to_string()
            } else {
                "no".into()
            },
            if entered_before_yes {
                "VIOLATION".to_string()
            } else {
                "no".into()
            },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nall safety invariants hold: {}\n\
         (R2: all-red on trigger; landing follows; R4: no entry without Yes)\n",
        if all_hold { "yes" } else { "NO — see table" }
    ));
    out
}

/// E13 — the paper's proposed RGB replacement for the vertical array.
pub fn e13_rgb_vs_vertical() -> String {
    use hdc_drone::RgbStatusSignal;
    let mut out = String::from(
        "E13 | extension (paper: 'a combination of RGB light signals may be used ...\n      left for further work'): colour-coded status vs the discarded vertical\n      array, identical observer budget (3 glances, per-glance corruption)\n\n",
    );
    let mut rng = SmallRng::seed_from_u64(13);
    let trials = 400;
    let mut table = Table::new(["corruption", "vertical array", "RGB status"]);
    for p in [0.0, 0.05, 0.1, 0.2, 0.3, 0.4] {
        let arr = VerticalArray::new(VerticalAnimation::TakeOff);
        let arr_ok = (0..trials)
            .filter(|_| {
                arr.observe_direction(3, 0.45, p, &mut rng) == Some(VerticalAnimation::TakeOff)
            })
            .count();
        let rgb = RgbStatusSignal::for_animation(VerticalAnimation::TakeOff);
        let rgb_ok = (0..trials)
            .filter(|_| {
                rgb.observe_hue(3, p, &mut rng).map(|h| h.animation())
                    == Some(VerticalAnimation::TakeOff)
            })
            .count();
        table.row([
            num(p, 2),
            pct(arr_ok as f64 / trials as f64),
            pct(rgb_ok as f64 / trials as f64),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nThe colour code is order-free: any single clean glance decodes it, and\n\
         majority voting over glances *improves* with corruption instead of\n\
         inverting. The array's phase-order encoding is what made it confusing —\n\
         exactly the paper's hypothesis when it proposed RGB signals instead.\n",
    );
    out
}

/// E14 — IMU-derived flight state (the paper's open IMU question).
pub fn e14_imu_flight_state() -> String {
    use hdc_drone::{Barometer, FlightState, FlightStateEstimator, Imu};
    let mut out = String::from(
        "E14 | extension (paper: 'the integration of an appropriate sensor like an\n      IMU to indicate actual flight is yet to be discussed'): flight state\n      estimated from a consumer MEMS IMU + barometer across a full sortie\n\n",
    );
    let mut drone = Drone::new(DroneConfig::default());
    let mut imu = Imu::mems();
    let baro = Barometer::consumer();
    let mut est = FlightStateEstimator::new();
    let mut rng = SmallRng::seed_from_u64(14);
    // prime from rest
    let _ = imu.sample(drone.state(), 0.05, &mut rng);

    let mut table = Table::new(["phase", "duration", "dominant estimate", "agreement"]);
    let run_phase = |drone: &mut Drone,
                     imu: &mut Imu,
                     est: &mut FlightStateEstimator,
                     rng: &mut SmallRng,
                     label: &str,
                     truth: FlightState,
                     steps: usize,
                     table: &mut Table| {
        let mut counts: std::collections::HashMap<FlightState, usize> = Default::default();
        for _ in 0..steps {
            drone.tick(0.05);
            let s = imu.sample(drone.state(), 0.05, rng);
            let alt = baro.sample(drone.state(), rng);
            let e = est.update_fused(&s, Some(alt), drone.state().rotors_on, 0.05);
            *counts.entry(e).or_default() += 1;
        }
        let dominant = counts
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(s, _)| *s)
            .unwrap_or(FlightState::Grounded);
        let agree = *counts.get(&truth).unwrap_or(&0) as f64 / steps as f64;
        table.row([
            label.to_string(),
            format!("{:.1} s", steps as f64 * 0.05),
            format!("{dominant:?}"),
            pct(agree),
        ]);
    };

    drone.execute_pattern(FlightPattern::TakeOff {
        target_altitude: 4.0,
    });
    run_phase(
        &mut drone,
        &mut imu,
        &mut est,
        &mut rng,
        "take-off (climb)",
        FlightState::Climbing,
        60,
        &mut table,
    );
    run_phase(
        &mut drone,
        &mut imu,
        &mut est,
        &mut rng,
        "hover",
        FlightState::Hovering,
        100,
        &mut table,
    );
    drone.goto(hdc_geometry::Vec3::new(15.0, 0.0, 4.0));
    run_phase(
        &mut drone,
        &mut imu,
        &mut est,
        &mut rng,
        "transit",
        FlightState::Translating,
        70,
        &mut table,
    );
    // settle at the waypoint (skip the deceleration transient)
    run_phase(
        &mut drone,
        &mut imu,
        &mut est,
        &mut rng,
        "settle (transient)",
        FlightState::Hovering,
        30,
        &mut table,
    );
    run_phase(
        &mut drone,
        &mut imu,
        &mut est,
        &mut rng,
        "hover 2",
        FlightState::Hovering,
        100,
        &mut table,
    );
    drone.execute_pattern(FlightPattern::Landing);
    run_phase(
        &mut drone,
        &mut imu,
        &mut est,
        &mut rng,
        "landing (descent)",
        FlightState::Descending,
        90,
        &mut table,
    );
    run_phase(
        &mut drone,
        &mut imu,
        &mut est,
        &mut rng,
        "parked",
        FlightState::Grounded,
        40,
        &mut table,
    );

    out.push_str(&table.render());
    out.push_str(
        "\nThe fused estimator (accelerometer for bandwidth, barometer differencing\n\
         for the constant-rate phases, rotor telemetry for ground truth-ing) reads\n\
         the whole sortie, so the navigation lights can reflect *actual* flight\n\
         rather than commanded flight — closing the paper's open question.\n\
         Transitions blur across phase boundaries (debouncing), which is the price\n\
         of not flapping the lights.\n",
    );
    out
}

/// E15 — vocabulary economics: database size vs lookup cost.
pub fn e15_vocabulary_economics() -> String {
    let mut out = String::from(
        "E15 | extension (paper: 'cost-efficient drones need only understand the\n      bare minimum of signs and so reduce the complexity and cost of\n      recognition electronics'): lookup cost and margin vs vocabulary size\n\n",
    );
    // build vocabularies: the 3 real signs plus synthetic extra 'signs'
    // (distinct smooth shapes) to emulate richer languages
    let pipeline = calibrated_pipeline();
    let canonical: Vec<Vec<f64>> = MarshallingSign::ALL
        .iter()
        .map(|s| {
            let frame = render_sign(*s, &ViewSpec::paper_default(0.0, 5.0, 3.0));
            pipeline.signature_of(&frame).expect("visible").series
        })
        .collect();
    let query = canonical[2].clone(); // 'No'

    let mut table = Table::new([
        "vocabulary",
        "templates",
        "lookup (pruned)",
        "lookup (exhaustive)",
        "min margin",
    ]);
    for extra in [0usize, 7, 27, 97] {
        let mut idx = hdc_sax::SaxIndex::new(SaxParams::default(), 128);
        for (i, s) in canonical.iter().enumerate() {
            idx.insert(format!("sign{i}"), s);
        }
        for k in 0..extra {
            let synth: Vec<f64> = (0..128)
                .map(|i| {
                    let x = i as f64 * 0.1 + k as f64 * 0.7;
                    (x.sin() * (1.0 + 0.1 * k as f64)).cos() + (0.37 * x).sin()
                })
                .collect();
            idx.insert(format!("extra{k}"), &synth);
        }
        // timing
        let reps = 30;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = idx.best_match(&query);
        }
        let pruned_us = t0.elapsed().as_micros() as f64 / reps as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            let _ = idx.best_two(&query);
        }
        let exhaustive_us = t1.elapsed().as_micros() as f64 / reps as f64;
        // min inter-template margin
        let templates = idx.templates();
        let mut min_pair = f64::INFINITY;
        for i in 0..templates.len() {
            for j in (i + 1)..templates.len() {
                let (d, _) = hdc_timeseries::min_rotated_euclidean(
                    &templates[i].series,
                    &templates[j].series,
                    8, // coarse stride is enough for a margin estimate
                )
                .expect("canonical");
                min_pair = min_pair.min(d);
            }
        }
        table.row([
            format!("3 signs + {extra}"),
            (3 + extra).to_string(),
            format!("{pruned_us:.0} us"),
            format!("{exhaustive_us:.0} us"),
            num(min_pair, 2),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nLookup cost grows with vocabulary size and the inter-template margin (the\n\
         thing the acceptance threshold lives off) shrinks — quantifying the paper's\n\
         argument that cheap drones should carry only the minimum sign set. The\n\
         MINDIST lower-bound pruning softens the cost growth but cannot restore the\n\
         safety margin.\n",
    );
    out
}

/// E16 — the dynamic wave-off gesture.
pub fn e16_wave_off() -> String {
    use hdc_vision::dynamic::{DynamicConfig, DynamicDecision, DynamicRecognizer};
    let mut out = String::from(
        "E16 | extension (paper: 'static and, possibly later, dynamic marshalling\n      signals'): the wave-off gesture — detection across wave frequency and\n      azimuth, plus false-positive checks on held static signs\n\n",
    );
    let view_for = |az: f64| ViewSpec::paper_default(az, 5.0, 3.0);
    let run = |freq_hz: f64, az: f64| -> DynamicDecision {
        let mut rec = DynamicRecognizer::new(DynamicConfig::default());
        for i in 0..30 {
            let t = i as f64 * 0.1;
            let frame = render_pose(Pose::wave_off_phase(t * freq_hz), &view_for(az));
            rec.push(t, &hdc_raster::threshold::binarize(&frame, 128));
        }
        rec.decision()
    };

    let mut table = Table::new(["wave freq", "azimuth 0", "azimuth 30", "azimuth 60"]);
    for freq in [0.5, 1.0, 2.0] {
        table.row([
            format!("{freq} Hz"),
            format!("{:?}", run(freq, 0.0)),
            format!("{:?}", run(freq, 30.0)),
            format!("{:?}", run(freq, 60.0)),
        ]);
    }
    out.push_str(&table.render());

    out.push_str("\nfalse positives on held static signs (3 s windows):\n\n");
    let mut fp = Table::new(["pose", "decision"]);
    for sign in MarshallingSign::ALL {
        let mut rec = DynamicRecognizer::new(DynamicConfig::default());
        for i in 0..30 {
            let frame = render_pose(Pose::for_sign(sign), &view_for(0.0));
            rec.push(
                i as f64 * 0.1,
                &hdc_raster::threshold::binarize(&frame, 128),
            );
        }
        fp.row([sign.label().to_string(), format!("{:?}", rec.decision())]);
    }
    out.push_str(&fp.render());
    out.push_str(
        "\nThe temporal channel is *more* azimuth-robust than the static one: the\n\
         aspect oscillation survives foreshortening (it only attenuates), so the\n\
         wave-off still reads at azimuths where static signs are already dead —\n\
         a good property for an abort gesture. Static holds never false-trigger.\n",
    );
    out
}

/// E17 — fleet scaling over the orchard.
pub fn e17_fleet_scaling() -> String {
    use hdc_orchard::{run_fleet, FleetConfig, MissionConfig, OrchardMap};
    let mut out = String::from(
        "E17 | extension (paper intro: drones 'will work collaboratively and\n      cooperatively'): trap-collection makespan and energy vs fleet size\n      (6x8 orchard, 48 traps, 4 people about)\n\n",
    );
    out.push_str("clean logistics (no people — pure transit/read scaling):\n\n");
    let run_table = |people: u32| -> Table {
        let mut table = Table::new([
            "drones",
            "traps read",
            "makespan",
            "speedup",
            "fleet energy",
            "negotiations",
        ]);
        let mut solo_time = 0.0;
        for n in [1u32, 2, 3, 4, 6] {
            let map = OrchardMap::grid(6, 8, 4.0, 3.0);
            let mission = MissionConfig {
                human_count: people,
                blocking_radius_m: 3.5,
                ..Default::default()
            };
            let stats = run_fleet(
                FleetConfig {
                    drone_count: n,
                    mission,
                },
                &map,
                17,
            );
            if n == 1 {
                solo_time = stats.makespan_s;
            }
            table.row([
                n.to_string(),
                stats.traps_read.to_string(),
                format!("{:.0} s", stats.makespan_s),
                format!("{:.1}x", solo_time / stats.makespan_s),
                format!("{:.2} Wh", stats.energy_wh),
                stats.negotiations().to_string(),
            ]);
        }
        table
    };
    out.push_str(&run_table(0).render());
    out.push_str("\nbusy orchard (4 people — negotiation time and luck added):\n\n");
    out.push_str(&run_table(4).render());
    out.push_str(
        "\nOn clean logistics the makespan shrinks sub-linearly (per-drone take-off,\n\
         landing and transit overhead; uneven region splits) while total energy\n\
         grows. With people about, negotiation encounters dominate the variance —\n\
         splitting the orchard also splits the 30 s negotiations across drones,\n\
         which can make small fleets look super-linear. Both effects support the\n\
         paper's cost argument: many cheap, minimally-equipped drones win\n\
         wall-clock, not energy.\n",
    );
    out
}

/// E18 — facing-error sensitivity: the vision dead angle felt by the protocol.
pub fn e18_facing_sensitivity() -> String {
    use hdc_core::{CollaborationSession, Role, SessionConfig};
    let mut out = String::from(
        "E18 | extension: how accurately must the human face the drone? Consenting\n      workers with controlled facing error (8 sessions per cell); links the\n      dead angle (E3) to protocol outcomes\n\n",
    );
    let mut table = Table::new([
        "max facing error",
        "granted",
        "denied",
        "abandoned",
        "mean duration",
    ]);
    for err_deg in [0.0, 10.0, 20.0, 30.0, 45.0, 60.0] {
        let mut granted = 0;
        let mut denied = 0;
        let mut abandoned = 0;
        let mut total_t = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let mut cfg = SessionConfig::for_role(Role::Worker, true, 300 + seed);
            let mut profile = Role::Worker.profile();
            profile.attend_probability = 1.0; // isolate the geometric effect
            profile.answer_probability = 1.0;
            profile.correct_sign_probability = 1.0;
            profile.max_facing_error_deg = err_deg;
            cfg.profile_override = Some(profile);
            let mut s = CollaborationSession::new(cfg);
            match s.run() {
                hdc_core::SessionOutcome::Granted => granted += 1,
                hdc_core::SessionOutcome::Denied => denied += 1,
                hdc_core::SessionOutcome::Abandoned => abandoned += 1,
                _ => {}
            }
            total_t += s.time();
        }
        table.row([
            format!("{err_deg:.0} deg"),
            format!("{granted}/{runs}"),
            denied.to_string(),
            abandoned.to_string(),
            format!("{:.0} s", total_t / runs as f64),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nWith behavioural error sources switched off, outcome degradation is purely\n\
         geometric: once the facing error can exceed the critical azimuth (E3,\n\
         ~30 deg), signs start landing in the dead angle, sessions need retries or\n\
         abandon. Training people to face the drone is as important as training\n\
         the signs — a concrete, measurable refinement of the paper's user-story\n\
         analysis.\n",
    );
    out
}

/// E19 — anthropometric robustness: the enrolled templates come from one
/// synthetic adult; real orchards contain every body.
pub fn e19_anthropometric_robustness() -> String {
    use hdc_figure::{render_signaller, BodyDimensions, Signaller};
    let mut out = String::from(
        "E19 | extension: recognition of all three signs by bodies that differ from\n      the calibrated adult (templates enrolled once from the default body)\n\n",
    );
    let pipeline = calibrated_pipeline();
    let view = ViewSpec::paper_default(0.0, 5.0, 3.0);
    let camera = view.camera();

    let bodies: Vec<(&str, BodyDimensions)> = vec![
        ("calibrated adult", BodyDimensions::adult()),
        ("short (0.85x)", BodyDimensions::adult().scaled(0.85)),
        ("tall (1.12x)", BodyDimensions::adult().scaled(1.12)),
        (
            "long-limbed (+15% limbs)",
            BodyDimensions::adult().with_proportions(1.15, 1.0),
        ),
        (
            "short-limbed (-12% limbs)",
            BodyDimensions::adult().with_proportions(0.88, 1.0),
        ),
        (
            "broad (+25% girth)",
            BodyDimensions::adult().with_proportions(1.0, 1.25),
        ),
        (
            "slim (-20% girth)",
            BodyDimensions::adult().with_proportions(1.0, 0.8),
        ),
        (
            "bulky child (0.8x, +20% girth)",
            BodyDimensions::adult()
                .scaled(0.8)
                .with_proportions(1.0, 1.2),
        ),
    ];

    let mut table = Table::new(["body", "AttentionGained", "Yes", "No"]);
    for (name, dims) in &bodies {
        let mut cells = vec![name.to_string()];
        for sign in MarshallingSign::ALL {
            let signaller = Signaller::new(
                hdc_geometry::Vec2::ZERO,
                std::f64::consts::FRAC_PI_2,
                Pose::for_sign(sign),
            )
            .with_dimensions(*dims);
            let frame = render_signaller(&signaller, &camera);
            let r = pipeline.recognize(&frame);
            let ok = r.decision.as_deref() == Some(sign.label());
            let d = r.best.as_ref().map(|m| m.distance).unwrap_or(f64::NAN);
            cells.push(if ok {
                format!("ok ({d:.1})")
            } else {
                format!("MISS ({d:.1})")
            });
        }
        table.row(cells);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nUniform size changes are almost free (the contour signature is scale\n\
         invariant; only rasterisation changes), and every tested body stays\n\
         within the acceptance threshold — though proportion changes consume up\n\
         to ~45% of the margin. A deployment should still enrol a small\n\
         body-shape panel: proportion shifts stack with azimuth and noise, which\n\
         each consume margin of their own (E3).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_cover_all() {
        let all = all_experiments();
        assert_eq!(all.len(), 19);
        for (id, desc) in &all {
            assert!(!desc.is_empty(), "{id}");
        }
        assert!(run_experiment(ExperimentId(99)).is_none());
    }

    #[test]
    fn e5_reports_unique_words() {
        let report = e5_uniqueness();
        assert!(report.contains("AttentionGained"));
        assert!(report.contains("Yes"));
        assert!(report.contains("No"));
    }

    #[test]
    fn e6_contains_danger_row() {
        let report = e6_led_ring();
        assert!(report.contains("danger snapshot"));
        assert!(report.contains("r r r r r r r r r r"));
    }

    #[test]
    fn e7_invariant_holds() {
        let report = e7_landing_pattern();
        assert!(
            report.contains("invariant 'rotors stop before lights out': holds"),
            "{report}"
        );
    }

    #[test]
    fn e9_clean_reading_perfect() {
        let report = e9_vertical_array();
        let first_data_line = report
            .lines()
            .find(|l| l.trim_start().starts_with("0.00"))
            .expect("flip 0 row");
        assert!(first_data_line.contains("100%"), "{first_data_line}");
    }
}
