//! Multi-core engine scaling: batch throughput by worker count.
//!
//! For each benchmark resolution this measures the serial baseline —
//! [`RecognitionPipeline::recognize_with`] through one reused scratch on one
//! thread, exactly the path `BENCH_recognize.json` certifies — and then
//! [`RecognitionEngine::process_batch`] at a sweep of worker counts, with
//! speed-up and per-worker scaling efficiency per point. A sustained
//! multi-stream run (S simulated camera streams over the engine) rides
//! along, since stream serving is the production shape of the load.
//!
//! The `bench_engine` binary runs this and writes `BENCH_engine.json` so the
//! numbers — and the hardware they were measured on — are committed
//! alongside the code. **Scaling numbers are only as good as the host's
//! core count**: the JSON records `available_parallelism` so a flat curve
//! from a single-core container is attributable instead of misleading.

use crate::frames::{benchmark_pipeline, sign_stream, RESOLUTIONS};
use crate::throughput::{measure, Throughput};
use hdc_raster::GrayImage;
use hdc_runtime::available_workers;
use hdc_vision::{FrameScratch, MultiStreamReport, RecognitionEngine};
use std::fmt::Write as _;
use std::time::Instant;

/// Worker counts swept when no `--threads` override is given.
pub const DEFAULT_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Whole sign streams per batch: 8 × 9 = 72 frames per `process_batch`
/// call, large enough that per-batch thread setup amortises to noise.
pub const BATCH_CYCLES: usize = 8;

/// The worker counts a `--threads N` flag expands to: the default sweep
/// truncated/extended so the run covers 1..N in powers of two plus N
/// itself. `None` keeps the committed default sweep.
pub fn worker_counts_for(threads: Option<usize>) -> Vec<usize> {
    match threads {
        None => DEFAULT_WORKER_COUNTS.to_vec(),
        Some(n) => {
            let mut counts: Vec<usize> = std::iter::successors(Some(1usize), |w| Some(w * 2))
                .take_while(|&w| w < n)
                .collect();
            counts.push(n);
            counts
        }
    }
}

/// Batch throughput at one worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerPoint {
    /// Pool size.
    pub workers: usize,
    /// Measured batch throughput.
    pub throughput: Throughput,
}

/// Serial-vs-engine scaling at one resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingResult {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// One thread, one scratch, no pool: the baseline.
    pub serial: Throughput,
    /// Engine batch throughput per worker count, in sweep order.
    pub points: Vec<WorkerPoint>,
}

impl ScalingResult {
    /// Aggregate speed-up of one point over the serial baseline.
    pub fn speedup(&self, point: &WorkerPoint) -> f64 {
        point.throughput.fps() / self.serial.fps()
    }

    /// Scaling efficiency: speed-up divided by worker count (1.0 = perfect).
    pub fn efficiency(&self, point: &WorkerPoint) -> f64 {
        self.speedup(point) / point.workers as f64
    }
}

/// Cycles `process_batch` over `batch` until at least `min_frames` frames
/// *and* `min_seconds` have elapsed, after one untimed warm-up batch (which
/// grows every worker's scratch to frame size).
pub fn measure_batches(
    engine: &RecognitionEngine,
    batch: &[GrayImage],
    min_frames: usize,
    min_seconds: f64,
) -> Throughput {
    engine.process_batch(batch); // warm-up
    let mut frames = 0usize;
    let mut decided = 0usize;
    let start = Instant::now();
    loop {
        decided += engine
            .process_batch(batch)
            .iter()
            .filter(|r| r.decided())
            .count();
        frames += batch.len();
        let seconds = start.elapsed().as_secs_f64();
        if frames >= min_frames && seconds >= min_seconds {
            return Throughput {
                frames,
                seconds,
                decided,
            };
        }
    }
}

/// Runs the scaling comparison at one resolution.
pub fn scale_at(
    width: u32,
    height: u32,
    worker_counts: &[usize],
    batch_cycles: usize,
    min_frames: usize,
    min_seconds: f64,
) -> ScalingResult {
    let pipeline = benchmark_pipeline();
    let stream = sign_stream(width, height);
    let batch: Vec<GrayImage> = std::iter::repeat_with(|| stream.clone())
        .take(batch_cycles.max(1))
        .flatten()
        .collect();

    let mut scratch = FrameScratch::new();
    let serial = measure(&batch, min_frames, min_seconds, |f| {
        pipeline.recognize_with(&mut scratch, f).decision.is_some()
    });

    let points = worker_counts
        .iter()
        .map(|&workers| {
            let engine = RecognitionEngine::new(pipeline.clone(), Some(workers));
            WorkerPoint {
                workers,
                throughput: measure_batches(&engine, &batch, min_frames, min_seconds),
            }
        })
        .collect();
    ScalingResult {
        width,
        height,
        serial,
        points,
    }
}

/// Runs the full scaling sweep over [`RESOLUTIONS`].
pub fn run_scaling_sweep(
    worker_counts: &[usize],
    batch_cycles: usize,
    min_frames: usize,
    min_seconds: f64,
) -> Vec<ScalingResult> {
    RESOLUTIONS
        .iter()
        .map(|&(w, h)| scale_at(w, h, worker_counts, batch_cycles, min_frames, min_seconds))
        .collect()
}

/// The committed multi-stream study: S simulated 640×480 camera streams
/// (one per sign-stream cycle, azimuth-staggered via rotation of the shared
/// stream) served by an engine with `workers` workers.
pub fn multi_stream_study(
    streams: usize,
    workers: usize,
    min_frames_per_stream: usize,
    min_seconds: f64,
) -> MultiStreamReport {
    let engine = RecognitionEngine::new(benchmark_pipeline(), Some(workers));
    let base = sign_stream(640, 480);
    let stream_set: Vec<Vec<GrayImage>> = (0..streams)
        .map(|s| {
            // stagger stream phases so workers never process identical
            // frames in lock-step
            let mut frames = base.clone();
            frames.rotate_left(s % base.len());
            frames
        })
        .collect();
    engine.run_streams(&stream_set, min_frames_per_stream, min_seconds)
}

/// Renders the scaling sweep plus the stream study as the JSON document
/// committed at `BENCH_engine.json` (hand-rolled: the workspace has no JSON
/// dependency). `threads_flag` records the CLI override, if any, so results
/// are attributable to their invocation as well as their hardware.
pub fn to_json(
    results: &[ScalingResult],
    stream_report: &MultiStreamReport,
    worker_counts: &[usize],
    threads_flag: Option<usize>,
    batch_cycles: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"RecognitionEngine multi-core batch and stream throughput\",\n");
    let _ = writeln!(
        s,
        "  \"metadata\": {{\n    \"threads_flag\": {},\n    \"available_parallelism\": {},\n    \"worker_counts\": [{}],\n    \"batch_frames\": {}\n  }},",
        threads_flag
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".to_owned()),
        available_workers(),
        worker_counts
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        batch_cycles * 9
    );
    s.push_str("  \"protocol\": {\n");
    s.push_str("    \"stream\": \"3 marshalling signs x 3 azimuths (0/10/20 deg), altitude 5 m, distance 3 m\",\n");
    s.push_str("    \"serial\": \"recognize_with(FrameScratch), one thread, one scratch (the BENCH_recognize.json optimised path)\",\n");
    s.push_str("    \"engine\": \"RecognitionEngine::process_batch over a WorkPool: per-worker scratch, order-preserving index-addressed results\",\n");
    s.push_str("    \"timing\": \"one untimed warm-up batch, then whole batches until the frame and wall-clock floors are both met\",\n");
    s.push_str("    \"note\": \"scaling is bounded by available_parallelism; a flat curve on a 1-core host is expected, re-run on a multi-core host for the scaling study\"\n");
    s.push_str("  },\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\n      \"width\": {}, \"height\": {},\n      \"serial_fps\": {:.2}, \"serial_ms_per_frame\": {:.3},\n      \"workers\": [\n",
            r.width,
            r.height,
            r.serial.fps(),
            r.serial.ms_per_frame()
        );
        for (j, p) in r.points.iter().enumerate() {
            let _ = writeln!(
                s,
                "        {{\"workers\": {}, \"fps\": {:.2}, \"ms_per_frame\": {:.3}, \"frames\": {}, \"decided\": {}, \"speedup\": {:.2}, \"efficiency\": {:.2}}}{}",
                p.workers,
                p.throughput.fps(),
                p.throughput.ms_per_frame(),
                p.throughput.frames,
                p.throughput.decided,
                r.speedup(p),
                r.efficiency(p),
                if j + 1 < r.points.len() { "," } else { "" }
            );
        }
        let _ = write!(
            s,
            "      ]\n    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    let per_stream_fps = (0..stream_report.per_stream.len())
        .map(|i| format!("{:.2}", stream_report.stream_fps(i)))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        s,
        "  \"multi_stream\": {{\"streams\": {}, \"workers\": {}, \"seconds\": {:.2}, \"aggregate_fps\": {:.2}, \"per_stream_fps\": [{}]}}",
        stream_report.per_stream.len(),
        stream_report.workers,
        stream_report.seconds,
        stream_report.aggregate_fps(),
        per_stream_fps
    );
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_batch_agrees_with_serial_on_the_benchmark_stream() {
        let pipeline = benchmark_pipeline();
        let batch = sign_stream(320, 240);
        let engine = RecognitionEngine::new(pipeline, Some(4));
        assert_eq!(engine.process_batch(&batch), engine.process_serial(&batch));
    }

    #[test]
    fn worker_count_expansion() {
        assert_eq!(worker_counts_for(None), vec![1, 2, 4, 8]);
        assert_eq!(worker_counts_for(Some(1)), vec![1]);
        assert_eq!(worker_counts_for(Some(2)), vec![1, 2]);
        assert_eq!(worker_counts_for(Some(6)), vec![1, 2, 4, 6]);
        assert_eq!(worker_counts_for(Some(16)), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn smoke_scaling_point_is_sane() {
        let r = scale_at(320, 240, &[1, 2], 1, 1, 0.0);
        assert_eq!(r.points.len(), 2);
        assert!(r.serial.fps() > 0.0);
        for p in &r.points {
            assert!(p.throughput.fps() > 0.0);
            assert!(r.speedup(p) > 0.0);
            assert!(r.efficiency(p) > 0.0);
            assert!(p.throughput.decided <= p.throughput.frames);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let t = Throughput {
            frames: 72,
            seconds: 1.0,
            decided: 72,
        };
        let r = ScalingResult {
            width: 640,
            height: 480,
            serial: t,
            points: vec![WorkerPoint {
                workers: 2,
                throughput: t,
            }],
        };
        let report = MultiStreamReport {
            per_stream: vec![hdc_vision::StreamStats {
                frames: 10,
                decided: 10,
                gate: Default::default(),
            }],
            seconds: 1.0,
            workers: 2,
        };
        let json = to_json(&[r], &report, &[2], Some(2), BATCH_CYCLES);
        assert!(json.contains("\"width\": 640"));
        assert!(json.contains("\"threads_flag\": 2"));
        assert!(json.contains("\"available_parallelism\""));
        assert!(json.contains("\"multi_stream\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
