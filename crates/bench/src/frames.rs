//! The shared synthetic frame source every throughput benchmark draws from.
//!
//! `bench_recognize` (single-core seed-vs-optimised) and `bench_engine`
//! (multi-core scaling) must measure the *same* workload for their numbers
//! to compose, so the stream construction lives here once: all three
//! marshalling signs over a few frontal-cone azimuths, at a camera scaled so
//! the silhouette covers the same fraction of the frame at every
//! resolution.

use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::GrayImage;
use hdc_vision::{KernelPath, PipelineConfig, RecognitionPipeline};

/// The three resolutions the benchmarks sweep, smallest first.
pub const RESOLUTIONS: [(u32, u32); 3] = [(320, 240), (640, 480), (1280, 960)];

/// A view at the standard geometry with the camera scaled to `width`×`height`
/// (focal length scales with width, so the silhouette covers the same
/// fraction of the frame at every resolution).
pub fn view_at(width: u32, height: u32, azimuth_deg: f64) -> ViewSpec {
    let mut v = ViewSpec::paper_default(azimuth_deg, 5.0, 3.0);
    v.width = width;
    v.height = height;
    v.focal_px = width as f64;
    v
}

/// The frame stream cycled during measurement: all three signs over a few
/// frontal-cone azimuths, so pruning cannot overfit to a single query.
pub fn sign_stream(width: u32, height: u32) -> Vec<GrayImage> {
    let mut frames = Vec::new();
    for az in [0.0, 10.0, 20.0] {
        for sign in MarshallingSign::ALL {
            frames.push(render_sign(sign, &view_at(width, height, az)));
        }
    }
    frames
}

/// The calibrated pipeline every benchmark implementation shares (default
/// kernel path, i.e. hybrid).
pub fn benchmark_pipeline() -> RecognitionPipeline {
    benchmark_pipeline_with(KernelPath::default())
}

/// [`benchmark_pipeline`] pinned to one kernel family. Byte and packed
/// calibration produce bit-identical templates and thresholds (the kernels
/// are equivalence-tested), so pipelines built here differ only in the
/// silhouette kernels they run.
pub fn benchmark_pipeline_with(kernels: KernelPath) -> RecognitionPipeline {
    let mut p = RecognitionPipeline::new(PipelineConfig {
        kernels,
        ..PipelineConfig::default()
    });
    p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_all_signs_at_every_resolution() {
        for (w, h) in RESOLUTIONS {
            let frames = sign_stream(w, h);
            assert_eq!(frames.len(), 9, "3 signs x 3 azimuths");
            assert!(frames.iter().all(|f| f.width() == w && f.height() == h));
        }
    }
}
