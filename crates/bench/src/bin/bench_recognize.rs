//! Sustained-throughput benchmark for the recognition pipeline.
//!
//! Measures the seed implementation (rebuilt from the retained reference
//! oracles) against the optimised scratch-reuse path at 320×240, 640×480 and
//! 1280×960, prints a comparison table and writes the JSON report.
//!
//! Usage: `cargo run --release -p hdc-bench --bin bench_recognize [out.json]`
//! (default output path `BENCH_recognize.json` in the current directory).

use hdc_bench::report::{num, Table};
use hdc_bench::throughput::{run_sweep, to_json};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_recognize.json".to_string());

    // Floors per resolution pass: enough whole cycles for stable averages
    // without letting the slow seed path at 1280×960 run for minutes.
    let results = run_sweep(45, 2.0);

    let mut table = Table::new([
        "resolution",
        "seed fps",
        "seed ms/frame",
        "optimised fps",
        "optimised ms/frame",
        "speedup",
    ]);
    for r in &results {
        table.row([
            format!("{}x{}", r.width, r.height),
            num(r.seed.fps(), 1),
            num(r.seed.ms_per_frame(), 3),
            num(r.optimized.fps(), 1),
            num(r.optimized.ms_per_frame(), 3),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("{}", table.render());

    let json = to_json(&results);
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
