//! Sustained-throughput benchmark for the recognition pipeline.
//!
//! Measures the seed implementation (rebuilt from the retained reference
//! oracles) against the optimised byte-kernel path (the PR 1 level), the
//! bit-packed word-parallel path, and the default hybrid path (byte
//! binarise, pack once, packed silhouette kernels) at 320×240, 640×480 and
//! 1280×960, prints a comparison table and writes the JSON report.
//!
//! Usage:
//! `cargo run --release -p hdc-bench --bin bench_recognize [--kernels] [--smoke] [out.json]`
//!
//! * `--kernels` additionally runs the per-kernel byte-vs-packed
//!   microbenchmarks at VGA and includes them in the report.
//! * `--smoke` shrinks the measurement floors to CI-sized values; use it
//!   only to verify the binary runs, never for committed numbers.
//! * default output path: `BENCH_recognize.json` in the current directory.

use hdc_bench::kernels::run_kernel_bench;
use hdc_bench::report::{num, Table};
use hdc_bench::throughput::{run_sweep, to_json};

fn main() {
    let mut kernels_mode = false;
    let mut smoke = false;
    let mut out_path = "BENCH_recognize.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--kernels" => kernels_mode = true,
            "--smoke" => smoke = true,
            other => out_path = other.to_string(),
        }
    }

    // Floors per resolution pass: enough whole cycles for stable averages
    // without letting the slow seed path at 1280×960 run for minutes. The
    // smoke floors just prove the binary end to end.
    let (min_frames, min_seconds) = if smoke { (1, 0.0) } else { (45, 2.0) };
    let results = run_sweep(min_frames, min_seconds);

    let mut table = Table::new([
        "resolution",
        "seed ms/f",
        "byte ms/f",
        "packed ms/f",
        "hybrid ms/f",
        "hybrid fps",
        "vs seed",
        "vs byte",
        "vs packed",
    ]);
    for r in &results {
        table.row([
            format!("{}x{}", r.width, r.height),
            num(r.seed.ms_per_frame(), 3),
            num(r.byte.ms_per_frame(), 3),
            num(r.packed.ms_per_frame(), 3),
            num(r.hybrid.ms_per_frame(), 3),
            num(r.hybrid.fps(), 1),
            format!("{:.2}x", r.speedup_hybrid()),
            format!("{:.2}x", r.hybrid.fps() / r.byte.fps()),
            format!("{:.2}x", r.speedup_hybrid_vs_packed()),
        ]);
    }
    println!("{}", table.render());

    let kernel_results = if kernels_mode {
        let iters = if smoke { 1 } else { 200 };
        let rows = run_kernel_bench(640, 480, iters);
        let mut kt = Table::new(["kernel", "byte ns/frame", "packed ns/frame", "speedup"]);
        for k in &rows {
            kt.row([
                k.name.to_string(),
                num(k.byte_ns, 0),
                num(k.packed_ns, 0),
                format!("{:.2}x", k.speedup()),
            ]);
        }
        println!("\nper-kernel (640x480):");
        println!("{}", kt.render());
        rows
    } else {
        Vec::new()
    };

    let json = to_json(&results, &kernel_results);
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
