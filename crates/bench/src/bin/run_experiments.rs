//! Regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! run_experiments            # run everything
//! run_experiments list       # list experiments
//! run_experiments e1 e5      # run a subset
//! ```

use hdc_bench::{all_experiments, run_experiment, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "list") {
        println!("available experiments:");
        for (id, desc) in all_experiments() {
            println!("  {id:<4} {desc}");
        }
        return;
    }

    let ids: Vec<ExperimentId> = if args.is_empty() {
        all_experiments().into_iter().map(|(id, _)| id).collect()
    } else {
        args.iter()
            .filter_map(|a| {
                a.trim_start_matches(['e', 'E'])
                    .parse::<u8>()
                    .ok()
                    .map(ExperimentId)
            })
            .collect()
    };

    if ids.is_empty() {
        eprintln!("no valid experiment ids given; try `run_experiments list`");
        std::process::exit(2);
    }

    for id in ids {
        match run_experiment(id) {
            Some(report) => {
                println!("{}", "=".repeat(78));
                println!("{report}");
            }
            None => eprintln!("unknown experiment {id}"),
        }
    }
}
