//! Multi-core engine scaling benchmark.
//!
//! Measures `RecognitionEngine::process_batch` against the serial
//! `recognize_with` baseline at a sweep of worker counts and the three
//! benchmark resolutions, plus a sustained 4-stream serving run, prints the
//! scaling table and writes the JSON report.
//!
//! Usage: `cargo run --release -p hdc-bench --bin bench_engine
//! [--threads N] [--smoke] [out.json]`
//!
//! * `--threads N` — sweep worker counts 1..N (powers of two plus N)
//!   instead of the default 1/2/4/8;
//! * `--smoke` — tiny frame/time floors: exercises every parallel path in
//!   seconds (the CI conformance mode), numbers not meaningful;
//! * default output path `BENCH_engine.json` in the current directory.

use hdc_bench::report::{num, Table};
use hdc_bench::scaling::{
    multi_stream_study, run_scaling_sweep, to_json, worker_counts_for, BATCH_CYCLES,
};
use hdc_runtime::{available_workers, threads_from_args};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = threads_from_args(&args);
    let mut out_path = "BENCH_engine.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => i += 1, // skip the flag's value
            "--smoke" => {}
            a if !a.starts_with("--") => out_path = a.to_owned(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let worker_counts = worker_counts_for(threads);
    // Floors: enough whole batches for stable averages in the full run;
    // one batch per point in smoke mode.
    let (batch_cycles, min_frames, min_seconds) = if smoke {
        (1, 1, 0.0)
    } else {
        (BATCH_CYCLES, 360, 2.0)
    };

    println!(
        "engine scaling: workers {:?} on a host with {} hardware thread(s){}",
        worker_counts,
        available_workers(),
        if smoke { " [smoke]" } else { "" }
    );

    let results = run_scaling_sweep(&worker_counts, batch_cycles, min_frames, min_seconds);

    let mut table = Table::new([
        "resolution",
        "serial fps",
        "workers",
        "engine fps",
        "speedup",
        "efficiency",
    ]);
    for r in &results {
        for p in &r.points {
            table.row([
                format!("{}x{}", r.width, r.height),
                num(r.serial.fps(), 1),
                p.workers.to_string(),
                num(p.throughput.fps(), 1),
                format!("{:.2}x", r.speedup(p)),
                format!("{:.0}%", 100.0 * r.efficiency(p)),
            ]);
        }
    }
    println!("{}", table.render());

    let stream_workers = worker_counts.iter().copied().max().unwrap_or(1);
    let (stream_floor, stream_seconds) = if smoke { (1, 0.0) } else { (120, 2.0) };
    println!("serving 4 sustained streams on {stream_workers} worker(s)...");
    let stream_report = multi_stream_study(4, stream_workers, stream_floor, stream_seconds);
    for (i, s) in stream_report.per_stream.iter().enumerate() {
        println!(
            "  stream {i}: {} frames, {:.1} fps",
            s.frames,
            stream_report.stream_fps(i)
        );
    }
    println!("  aggregate: {:.1} fps", stream_report.aggregate_fps());

    let json = to_json(
        &results,
        &stream_report,
        &worker_counts,
        threads,
        batch_cycles,
    );
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
