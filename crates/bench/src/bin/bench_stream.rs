//! Temporal-coherence gating benchmark: sustained held-sign stream serving.
//!
//! Serves the same synthetic held-sign streams (static holds with sensor
//! jitter and camera oversampling, punctuated by sign transitions) once per
//! gate mode — ungated, strict, approximate — prints the sustained-fps
//! comparison plus the measured decision divergence of approximate mode
//! against the ungated oracle, and writes the JSON report.
//!
//! Usage: `cargo run --release -p hdc-bench --bin bench_stream
//! [--threads N] [--smoke] [out.json]`
//!
//! * `--threads N` — engine worker count (default: available parallelism);
//! * `--smoke` — tiny workload and floors: exercises every mode in seconds
//!   (the CI conformance mode), numbers not meaningful;
//! * default output path `BENCH_stream.json` in the current directory.

use hdc_bench::report::{num, Table};
use hdc_bench::streams::{
    decision_divergence, gating_study, held_sign_streams, stream_json, StreamWorkload,
};
use hdc_runtime::{available_workers, threads_from_args};
use hdc_vision::temporal::TemporalConfig;
use hdc_vision::RecognitionEngine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = threads_from_args(&args);
    let mut out_path = "BENCH_stream.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => i += 1, // skip the flag's value
            "--smoke" => {}
            a if !a.starts_with("--") => out_path = a.to_owned(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let workers = threads.unwrap_or_else(available_workers);
    let (workload, streams_n, min_seconds) = if smoke {
        (StreamWorkload::smoke(), 2, 0.0)
    } else {
        (StreamWorkload::standard(), 4, 2.0)
    };
    // Floors: at least two full passes of every stream per mode (so reuse
    // carries across the cycle boundary) and the wall-clock floor.
    let min_frames = workload.frames_per_stream() * 2;

    println!(
        "stream gating: {} streams of {} frames at {}x{} on {} worker(s) (host has {} hardware thread(s)){}",
        streams_n,
        workload.frames_per_stream(),
        workload.width,
        workload.height,
        workers,
        available_workers(),
        if smoke { " [smoke]" } else { "" }
    );

    let streams = held_sign_streams(&workload, streams_n);
    let engine = RecognitionEngine::new(hdc_bench::frames::benchmark_pipeline(), Some(workers));

    let runs = gating_study(&engine, &streams, min_frames, min_seconds);
    let baseline_fps = runs[0].report.aggregate_fps();

    let mut table = Table::new([
        "mode",
        "agg fps",
        "speedup",
        "strict hits",
        "approx hits",
        "sig shortcut",
        "full runs",
    ]);
    for run in &runs {
        let gate = run.report.gate_totals();
        table.row([
            run.label.to_string(),
            num(run.report.aggregate_fps(), 1),
            format!("{:.2}x", run.report.aggregate_fps() / baseline_fps),
            gate.strict_hits.to_string(),
            gate.approx_hits.to_string(),
            gate.signature_short_circuits.to_string(),
            gate.full_runs.to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("measuring decision divergence vs the ungated oracle...");
    let strict_div = decision_divergence(&engine, &streams, TemporalConfig::strict());
    let approx_div = decision_divergence(&engine, &streams, TemporalConfig::approximate());
    assert_eq!(
        strict_div.divergent, 0,
        "strict gating must be bit-identical to the ungated oracle"
    );
    println!(
        "  strict: {}/{} frames diverge ({:.4}%)",
        strict_div.divergent,
        strict_div.frames,
        100.0 * strict_div.rate()
    );
    println!(
        "  approximate: {}/{} frames diverge ({:.4}%)",
        approx_div.divergent,
        approx_div.frames,
        100.0 * approx_div.rate()
    );

    let json = stream_json(
        &workload, streams_n, workers, threads, &runs, strict_div, approx_div,
    );
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
