//! Serving-layer benchmark: canonical-workload latency SLOs and the
//! sustained-capacity search.
//!
//! Serves the three golden workloads (steady / bursty / overload) through
//! the deterministic `hdc-serve` scheduler, prints their decision-latency
//! percentiles and outcome counters, runs the max-sustained-streams search
//! against the p99 SLO, and writes the JSON report.
//!
//! Usage: `cargo run --release -p hdc-bench --bin bench_serve
//! [--threads N] [--smoke] [out.json]`
//!
//! * `--threads N` — work-pool size the shards fan out over (default:
//!   available parallelism). Latencies and capacity are virtual-time and
//!   identical at every worker count; only `wall_s` changes;
//! * `--smoke` — small capacity ladder plus floor assertions on the
//!   canonical shapes (the CI conformance mode);
//! * default output path `BENCH_serve.json` in the current directory.

use hdc_bench::report::{num, Table};
use hdc_bench::serve::{
    canonical_study, max_sustained_streams, serve_json, serving_fixture, CapacitySearch,
};
use hdc_runtime::{available_workers, threads_from_args, WorkPool};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = threads_from_args(&args);
    let mut out_path = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => i += 1, // skip the flag's value
            "--smoke" => {}
            a if !a.starts_with("--") => out_path = a.to_owned(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let pool = WorkPool::with_threads(threads);
    println!(
        "serving study on {} worker(s) (host has {} hardware thread(s)){}",
        pool.workers(),
        available_workers(),
        if smoke { " [smoke]" } else { "" }
    );
    let (pipeline, frame_sets) = serving_fixture();

    let runs = canonical_study(&pipeline, &frame_sets, &pool);
    let mut table = Table::new([
        "workload", "offered", "decided", "shed", "rejected", "evict", "p50 us", "p95 us",
        "p99 us", "wall s",
    ]);
    for run in &runs {
        let r = &run.report;
        table.row([
            run.name.to_string(),
            r.offered().to_string(),
            r.decided().to_string(),
            r.shed().to_string(),
            (r.rejected_budget() + r.rejected_queue()).to_string(),
            r.evictions().to_string(),
            r.p50_us().to_string(),
            r.p95_us().to_string(),
            r.p99_us().to_string(),
            num(run.wall_s, 3),
        ]);
    }
    println!("{}", table.render());

    let search = if smoke {
        CapacitySearch::smoke()
    } else {
        CapacitySearch::standard()
    };
    println!(
        "capacity search: ~30 fps streams on {} shard(s), SLO p99 <= {} us, ladder to {}...",
        search.shards, search.slo_p99_us, search.max_probe_streams
    );
    let capacity = max_sustained_streams(&pipeline, &frame_sets, &pool, &search);
    for p in &capacity.probes {
        println!(
            "  {:>5} streams: p99 {:>7} us, dropped {:>5} -> {}",
            p.streams,
            p.p99_us,
            p.dropped,
            if p.healthy { "ok" } else { "SLO broken" }
        );
    }
    println!(
        "max sustained streams at SLO: {}",
        capacity.max_sustained_streams
    );

    if smoke {
        // conformance floors: the regimes must keep their blessed shapes
        let by_name = |n: &str| runs.iter().find(|r| r.name == n).expect("canonical run");
        let steady = &by_name("steady").report;
        assert_eq!(
            steady.decided(),
            steady.offered(),
            "steady must serve every offered frame"
        );
        assert!(
            steady.restores() > 0,
            "steady must churn the LRU spill path"
        );
        let bursty = &by_name("bursty").report;
        assert!(
            bursty.rejected_budget() > 0,
            "bursty must trip the token bucket"
        );
        let overload = &by_name("overload").report;
        assert!(overload.shed() > 0, "overload must shed");
        let cfg = hdc_serve::workload::overload().config;
        assert!(
            overload.p99_us() <= cfg.deadline_us + cfg.costs.full_run_us + cfg.costs.fault_in_us,
            "overload decided-frame latency must stay structurally bounded"
        );
        assert!(
            capacity.max_sustained_streams >= 32,
            "even the smoke fleet must sustain 32 streams (got {})",
            capacity.max_sustained_streams
        );
        println!("smoke floors hold");
    }

    let json = serve_json(pool.workers(), threads, &runs, &search, &capacity);
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
