//! Session-scheduler benchmark: O(events) sessions versus O(ticks) lockstep.
//!
//! Two measurements over the dual-mode session scheduler:
//!
//! 1. **Idle-heavy day-length mission** — one negotiation stretched to
//!    orchard-day timescales (a silent human, hour-scale attention
//!    timeouts): the drone hovers idle almost the whole time. Lockstep pays
//!    one drone tick per `DT` regardless; event-driven mode coasts the idle
//!    spans and pays drone ticks only while flying or signalling. The
//!    committed floor is a ≥5× drone-tick reduction; the measured ratio on
//!    the day-length mission is far higher.
//! 2. **Capacity ladder** — session farms of growing size (to ≥1000
//!    concurrent sessions) multiplexed on the shared event heap, recording
//!    wall time, scheduler dispatches, drone ticks, and outcomes. The farm
//!    is serial by design (one heap); `--threads` is recorded as metadata
//!    for report comparability.
//!
//! Usage: `cargo run --release -p hdc-bench --bin bench_sessions
//! [--threads N] [--smoke] [out.json]`

use hdc_bench::report::{num, Table};
use hdc_core::{
    CollaborationSession, HumanScript, Role, ScriptedResponse, SessionConfig, SessionOutcome,
};
use hdc_figure::MarshallingSign;
use hdc_orchard::{run_session_farm, FarmStats};
use hdc_runtime::{available_workers, threads_from_args, ScheduleMode};
use std::time::Instant;

/// The idle-heavy day-length negotiation: a human who never responds and
/// hour-scale (minute-scale in smoke) attention timeouts, so nearly the
/// whole session is an idle hover between a handful of poke patterns.
fn idle_heavy_config(seed: u64, smoke: bool) -> SessionConfig {
    let timeout_s = if smoke { 120.0 } else { 3600.0 };
    let mut c = SessionConfig::for_role(Role::Worker, true, seed).with_script(HumanScript {
        on_poke: ScriptedResponse::Ignore,
        on_request: ScriptedResponse::Ignore,
        latency_s: 5.0,
    });
    c.negotiation.attention_timeout_s = timeout_s;
    c.negotiation.max_poke_attempts = 2;
    c.max_duration_s = 4.0 * timeout_s;
    // an orchard-day pack: the negotiation window, not the battery, should
    // be the limiting factor of the day-length mission
    c.battery_wh = 2000.0;
    c
}

/// One ladder session: scripted consenting humans with staggered response
/// latencies across all three roles.
fn ladder_config(i: usize) -> SessionConfig {
    let role = [Role::Supervisor, Role::Worker, Role::Visitor][i % 3];
    SessionConfig::for_role(role, true, i as u64 + 1).with_script(HumanScript {
        on_poke: ScriptedResponse::Sign(MarshallingSign::AttentionGained),
        on_request: ScriptedResponse::Sign(MarshallingSign::Yes),
        latency_s: 2.0 + (i % 7) as f64,
    })
}

struct ModeRun {
    drone_ticks: u64,
    dispatches: u64,
    sim_s: f64,
    wall_ms: f64,
    outcome: SessionOutcome,
}

/// Runs the idle-heavy mission alone in one scheduler mode.
fn run_idle_mission(config: SessionConfig, mode: ScheduleMode) -> ModeRun {
    const TICK: f64 = CollaborationSession::TICK_S;
    let mut session = CollaborationSession::new(config);
    let started = Instant::now();
    let mut dispatches = 0u64;
    match mode {
        ScheduleMode::Lockstep => {
            while !session.is_done() && session.time() < config.max_duration_s {
                session.step();
                dispatches += 1;
            }
        }
        ScheduleMode::EventDriven => {
            // run_events, unrolled so the dispatch count is observable
            while !session.is_done() && session.time() < config.max_duration_s {
                let now = session.time();
                let mut target = session.next_due_after(now);
                if target <= now || target.is_nan() {
                    target = now + TICK;
                }
                session.step_to(target.min(config.max_duration_s));
                dispatches += 1;
            }
        }
    }
    let outcome = session.run_events(); // already done; returns the outcome
    ModeRun {
        drone_ticks: session.drone_ticks(),
        dispatches,
        sim_s: session.time(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        outcome,
    }
}

struct Rung {
    sessions: usize,
    stats: FarmStats,
    wall_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = threads_from_args(&args);
    let mut out_path = "BENCH_sessions.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => i += 1, // skip the flag's value
            "--smoke" => {}
            a if !a.starts_with("--") => out_path = a.to_owned(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    let workers = threads.unwrap_or_else(available_workers);

    // --- idle-heavy day-length mission: lockstep vs event-driven ---
    let idle_cfg = idle_heavy_config(11, smoke);
    println!(
        "idle-heavy mission: silent human, {:.0}s attention timeout{}",
        idle_cfg.negotiation.attention_timeout_s,
        if smoke { " [smoke]" } else { "" }
    );
    let lock = run_idle_mission(idle_cfg, ScheduleMode::Lockstep);
    let event = run_idle_mission(idle_cfg, ScheduleMode::EventDriven);
    assert_eq!(
        lock.outcome, event.outcome,
        "the schedulers must agree on the idle mission's outcome"
    );
    let tick_ratio = lock.drone_ticks as f64 / event.drone_ticks.max(1) as f64;

    let mut table = Table::new([
        "scheduler",
        "sim s",
        "drone ticks",
        "dispatches",
        "wall ms",
        "outcome",
    ]);
    for (label, r) in [("lockstep", &lock), ("event-driven", &event)] {
        table.row([
            label.to_string(),
            num(r.sim_s, 1),
            r.drone_ticks.to_string(),
            r.dispatches.to_string(),
            num(r.wall_ms, 1),
            format!("{:?}", r.outcome),
        ]);
    }
    println!("{}", table.render());
    println!("drone-tick ratio (lockstep / event): {tick_ratio:.1}x");
    assert!(
        tick_ratio >= 5.0,
        "event-driven scheduling must cut idle-mission drone ticks >=5x, got {tick_ratio:.1}x"
    );

    // --- capacity ladder on the shared heap ---
    let rungs: &[usize] = if smoke { &[10, 50] } else { &[100, 300, 1000] };
    let mut ladder = Vec::new();
    for &n in rungs {
        let configs: Vec<SessionConfig> = (0..n).map(ladder_config).collect();
        let started = Instant::now();
        let stats = run_session_farm(&configs, ScheduleMode::EventDriven, 0xFA);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            stats.count(SessionOutcome::StillRunning),
            0,
            "every farmed session must terminate"
        );
        println!(
            "ladder {n:>5} sessions: {:.0} ms wall, {} dispatches, {} drone ticks, \
             {} granted / {} denied / {} abandoned / {} aborted",
            wall_ms,
            stats.events_dispatched,
            stats.total_drone_ticks,
            stats.count(SessionOutcome::Granted),
            stats.count(SessionOutcome::Denied),
            stats.count(SessionOutcome::Abandoned),
            stats.count(SessionOutcome::Aborted),
        );
        ladder.push(Rung {
            sessions: n,
            stats,
            wall_ms,
        });
    }
    let top = ladder.last().expect("ladder has rungs");
    assert!(
        top.sessions >= if smoke { 50 } else { 1000 },
        "the ladder must reach the committed capacity"
    );

    // --- JSON report ---
    use std::fmt::Write as _;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"execution\": {{\"threads\": {}, \"threads_requested\": {}, \
         \"available_parallelism\": {}}},",
        workers,
        threads.map_or("null".to_owned(), |t| t.to_string()),
        available_workers()
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"idle_mission\": {{");
    let _ = writeln!(
        json,
        "    \"attention_timeout_s\": {:.0}, \"sim_duration_s\": {:.1}, \
         \"outcome\": \"{:?}\",",
        idle_cfg.negotiation.attention_timeout_s, lock.sim_s, lock.outcome
    );
    let _ = writeln!(
        json,
        "    \"lockstep\": {{\"drone_ticks\": {}, \"dispatches\": {}, \"wall_ms\": {:.2}}},",
        lock.drone_ticks, lock.dispatches, lock.wall_ms
    );
    let _ = writeln!(
        json,
        "    \"event_driven\": {{\"drone_ticks\": {}, \"dispatches\": {}, \"wall_ms\": {:.2}}},",
        event.drone_ticks, event.dispatches, event.wall_ms
    );
    let _ = writeln!(json, "    \"drone_tick_ratio\": {tick_ratio:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"capacity_ladder\": [");
    for (i, rung) in ladder.iter().enumerate() {
        let comma = if i + 1 < ladder.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"sessions\": {}, \"wall_ms\": {:.1}, \"dispatches\": {}, \
             \"drone_ticks\": {}, \"sessions_per_s\": {:.1}, \"granted\": {}, \
             \"denied\": {}, \"abandoned\": {}, \"aborted\": {}}}{comma}",
            rung.sessions,
            rung.wall_ms,
            rung.stats.events_dispatched,
            rung.stats.total_drone_ticks,
            rung.sessions as f64 / (rung.wall_ms / 1e3).max(1e-9),
            rung.stats.count(SessionOutcome::Granted),
            rung.stats.count(SessionOutcome::Denied),
            rung.stats.count(SessionOutcome::Abandoned),
            rung.stats.count(SessionOutcome::Aborted),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
