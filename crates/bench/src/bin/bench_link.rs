//! Datalink benchmark: endpoint throughput and retransmit overhead.
//!
//! Two measurements over the `hdc-link` reliable endpoint pair:
//!
//! 1. **Processing throughput** — how many payloads per wall-clock second
//!    one sender/receiver pair pushes through the full tick → channel →
//!    handle → ack cycle on a clean link (the CPU cost of the protocol
//!    machinery, not the simulated airtime);
//! 2. **Retransmit overhead** — at 0%, 5% and 20% per-frame drop (applied
//!    to both directions), the wire cost of reliable delivery: retransmits
//!    per payload, total frames per delivered payload, and the simulated
//!    completion time of a fixed transfer.
//!
//! The link layer is single-threaded by design (one endpoint pair per
//! drone); `--threads` is recorded as metadata for report comparability
//! with the other benchmarks, it does not change the measurement.
//!
//! Usage: `cargo run --release -p hdc-bench --bin bench_link
//! [--threads N] [--smoke] [out.json]`

use hdc_bench::report::{num, Table};
use hdc_link::{Endpoint, EndpointConfig, LeaseConfig, LinkQuality, LossyChannel};
use hdc_runtime::{available_workers, threads_from_args};
use std::time::Instant;

/// Simulation step: 50 Hz, matching the session loop's frame cadence.
const DT: f64 = 0.02;

/// Outcome of one reliable transfer run.
struct TransferRun {
    label: &'static str,
    drop_pct: f64,
    payloads: u64,
    retransmits: u64,
    acks: u64,
    heartbeats: u64,
    sim_seconds: f64,
    wall_seconds: f64,
}

impl TransferRun {
    fn frames_on_wire(&self) -> u64 {
        self.payloads + self.retransmits + self.acks + self.heartbeats
    }

    fn overhead(&self) -> f64 {
        self.frames_on_wire() as f64 / self.payloads as f64
    }

    fn retransmit_rate(&self) -> f64 {
        self.retransmits as f64 / self.payloads as f64
    }

    fn throughput(&self) -> f64 {
        self.payloads as f64 / self.wall_seconds
    }
}

/// Drives `count` payloads through a sender/receiver endpoint pair over a
/// symmetric lossy link until every payload is delivered and acknowledged.
fn run_transfer(label: &'static str, drop_p: f64, count: u64, seed: u64) -> TransferRun {
    let quality = LinkQuality::clean().with_drop(drop_p);
    let mut to_rx: LossyChannel<hdc_link::Frame<u64>> = LossyChannel::new(quality, seed);
    let mut to_tx: LossyChannel<hdc_link::Frame<u64>> = LossyChannel::new(quality, seed ^ 0x5ee5);
    let mut tx: Endpoint<u64, u64> =
        Endpoint::new(EndpointConfig::default(), LeaseConfig::default(), seed, 0.0);
    let mut rx: Endpoint<u64, u64> = Endpoint::new(
        EndpointConfig::default(),
        LeaseConfig::default(),
        seed ^ 0xacc,
        0.0,
    );

    let started = Instant::now();
    let mut now = 0.0;
    let mut queued = 0u64;
    let mut delivered = 0u64;
    // cap well past any plausible completion so a regression fails loudly
    let deadline = (count as f64 * DT) * 50.0 + 600.0;
    while (delivered < count || tx.has_unacked() || !to_rx.is_idle() || !to_tx.is_idle())
        && now < deadline
    {
        // one fresh payload per step until the whole transfer is queued,
        // flow-controlled to stay inside the peer's receive window
        if queued < count && tx.in_flight() < EndpointConfig::default().window as usize / 2 {
            tx.send(now, queued);
            queued += 1;
        }
        for f in tx.tick(now) {
            to_rx.send(now, f);
        }
        for f in rx.tick(now) {
            to_tx.send(now, f);
        }
        for f in to_rx.poll(now) {
            delivered += rx.handle(now, f).len() as u64;
        }
        for f in to_tx.poll(now) {
            tx.handle(now, f);
        }
        now += DT;
    }
    assert_eq!(
        delivered, count,
        "{label}: transfer did not complete within the simulated deadline"
    );

    let t = tx.stats();
    let r = rx.stats();
    TransferRun {
        label,
        drop_pct: drop_p * 100.0,
        payloads: count,
        retransmits: t.retransmits,
        acks: r.acks_sent,
        heartbeats: t.heartbeats_sent + r.heartbeats_sent,
        sim_seconds: now,
        wall_seconds: started.elapsed().as_secs_f64().max(1e-9),
    }
}

fn json_for(runs: &[TransferRun], workers: usize, threads: Option<usize>) -> String {
    use std::fmt::Write as _;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"execution\": {{\"threads\": {}, \"threads_requested\": {}, \
         \"available_parallelism\": {}}},",
        workers,
        threads.map_or("null".to_owned(), |t| t.to_string()),
        available_workers()
    );
    let _ = writeln!(json, "  \"dt_s\": {DT},");
    let _ = writeln!(json, "  \"transfers\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"drop_pct\": {:.0}, \"payloads\": {}, \
             \"retransmits\": {}, \"acks\": {}, \"heartbeats\": {}, \
             \"frames_on_wire\": {}, \"overhead_frames_per_payload\": {:.3}, \
             \"retransmit_rate\": {:.4}, \"sim_seconds\": {:.1}, \
             \"throughput_payloads_per_s\": {:.0}}}{comma}",
            r.label,
            r.drop_pct,
            r.payloads,
            r.retransmits,
            r.acks,
            r.heartbeats,
            r.frames_on_wire(),
            r.overhead(),
            r.retransmit_rate(),
            r.sim_seconds,
            r.throughput(),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = threads_from_args(&args);
    let mut out_path = "BENCH_link.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => i += 1, // skip the flag's value
            "--smoke" => {}
            a if !a.starts_with("--") => out_path = a.to_owned(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let workers = threads.unwrap_or_else(available_workers);
    let count: u64 = if smoke { 500 } else { 50_000 };
    println!(
        "datalink: {count} payloads per transfer at {:.0} Hz, loss sweep 0/5/20% \
         (threads metadata: {workers}, host has {}){}",
        1.0 / DT,
        available_workers(),
        if smoke { " [smoke]" } else { "" }
    );

    let runs = [
        run_transfer("clean", 0.0, count, 0x42),
        run_transfer("drop-5", 0.05, count, 0x42),
        run_transfer("drop-20", 0.20, count, 0x42),
    ];

    let mut table = Table::new([
        "link",
        "drop %",
        "payloads",
        "retransmits",
        "frames/payload",
        "sim s",
        "payloads/s (wall)",
    ]);
    for r in &runs {
        table.row([
            r.label.to_string(),
            num(r.drop_pct, 0),
            r.payloads.to_string(),
            r.retransmits.to_string(),
            num(r.overhead(), 3),
            num(r.sim_seconds, 1),
            num(r.throughput(), 0),
        ]);
    }
    println!("{}", table.render());

    // sanity: reliability must not cost retransmits on a clean link, and
    // overhead must grow monotonically with loss
    assert_eq!(runs[0].retransmits, 0, "clean link must not retransmit");
    assert!(
        runs[0].overhead() <= runs[1].overhead() && runs[1].overhead() <= runs[2].overhead(),
        "wire overhead must grow with loss"
    );

    let json = json_for(&runs, workers, threads);
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("wrote {out_path}");
}
