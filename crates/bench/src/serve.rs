//! Serving-layer study: canonical-workload latency distributions and the
//! sustained-capacity search behind `BENCH_serve.json`.
//!
//! Two measurements, both over the deterministic [`hdc_serve`] scheduler:
//!
//! * **Canonical latencies** — serve the three golden workloads (steady /
//!   bursty / overload) and report their decision-latency percentiles and
//!   outcome counters. The percentiles are *virtual* (cost-model time), so
//!   they reproduce bit-for-bit on any host; the wall seconds alongside
//!   them are the real cost of driving the run.
//! * **Capacity search** — the paper-facing number: how many ~30 fps
//!   camera streams can one station sustain before the p99 decision
//!   latency breaks the SLO or frames start being shed? A doubling ladder
//!   finds the first unhealthy fleet size, then a bisection pins the
//!   largest healthy one. Virtual time makes the result a property of the
//!   configuration, not the benchmark host — the same search converges to
//!   the same stream count at any `--threads N`.

use hdc_raster::GrayImage;
use hdc_runtime::{Micros, WorkPool};
use hdc_serve::workload::{canonical_workloads, golden_frame_sets, golden_pipeline};
use hdc_serve::{
    serve, ArrivalSpec, CostModel, ServeConfig, ServeInput, ServeReport, StreamBudget,
};
use hdc_vision::temporal::TemporalConfig;
use hdc_vision::RecognitionPipeline;
use std::fmt::Write as _;
use std::time::Instant;

/// One canonical workload's serving outcome plus the real time it took to
/// drive it.
pub struct CanonicalRun {
    /// Workload name (`steady` / `bursty` / `overload`).
    pub name: &'static str,
    /// The deterministic serving report.
    pub report: ServeReport,
    /// Wall-clock seconds spent driving the run (host-dependent).
    pub wall_s: f64,
}

/// Serves the three canonical workloads and times each run.
pub fn canonical_study(
    pipeline: &RecognitionPipeline,
    frame_sets: &[Vec<GrayImage>],
    pool: &WorkPool,
) -> Vec<CanonicalRun> {
    canonical_workloads()
        .into_iter()
        .map(|w| {
            let input = ServeInput {
                frame_sets,
                arrivals: &w.arrivals,
            };
            let t0 = Instant::now();
            let report = serve(pipeline, &input, &w.config, pool);
            CanonicalRun {
                name: w.name,
                report,
                wall_s: t0.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// The capacity-search configuration: a healthy steady fleet scaled until
/// it is not.
#[derive(Debug, Clone, Copy)]
pub struct CapacitySearch {
    /// The SLO: p99 decision latency must stay at or under this.
    pub slo_p99_us: Micros,
    /// Nominal per-stream frame period (33_333 ≈ 30 fps).
    pub period_us: Micros,
    /// Frames each probed stream offers.
    pub frames_per_stream: usize,
    /// Scheduler shards the probed fleets are served on.
    pub shards: usize,
    /// Ladder ceiling: the search never probes beyond this fleet size.
    pub max_probe_streams: usize,
}

impl CapacitySearch {
    /// The committed search: 30 fps streams against a 20 ms p99 SLO on 4
    /// shards.
    pub fn standard() -> Self {
        CapacitySearch {
            slo_p99_us: 20_000,
            period_us: 33_333,
            frames_per_stream: 36,
            shards: 4,
            max_probe_streams: 2_048,
        }
    }

    /// A tiny variant for CI smoke runs.
    pub fn smoke() -> Self {
        CapacitySearch {
            slo_p99_us: 20_000,
            period_us: 33_333,
            frames_per_stream: 12,
            shards: 2,
            max_probe_streams: 256,
        }
    }

    /// The fleet this search serves at `streams` concurrent cameras:
    /// jittered steady arrivals, strict gating, ample budget and queue (the
    /// SLO and the shed counter, not admission, decide health).
    pub fn fleet(&self, streams: usize) -> (ArrivalSpec, ServeConfig) {
        (
            ArrivalSpec {
                streams,
                frames_per_stream: self.frames_per_stream,
                period_us: self.period_us,
                jitter_us: 2_000,
                burst: None,
                seed: 0xCAFE_0007,
            },
            ServeConfig {
                shards: self.shards,
                queue_cap: 64,
                resident_cap: 64,
                deadline_us: self.slo_p99_us,
                budget: StreamBudget { fps: 45, burst: 8 },
                costs: CostModel::default(),
                gate: TemporalConfig::strict(),
                spill: true,
            },
        )
    }
}

/// One capacity probe: fleet size, its p99, and whether it held the SLO.
#[derive(Debug, Clone, Copy)]
pub struct CapacityProbe {
    /// Concurrent streams probed.
    pub streams: usize,
    /// The fleet's p99 decision latency.
    pub p99_us: Micros,
    /// Shed + queue-rejected frames (a healthy fleet has zero).
    pub dropped: usize,
    /// SLO held: nothing dropped and p99 within bound.
    pub healthy: bool,
}

/// The capacity-search outcome.
#[derive(Debug, Clone)]
pub struct CapacityResult {
    /// The largest probed fleet that held the SLO.
    pub max_sustained_streams: usize,
    /// Every probe the ladder and bisection ran, in probe order.
    pub probes: Vec<CapacityProbe>,
}

fn probe(
    pipeline: &RecognitionPipeline,
    frame_sets: &[Vec<GrayImage>],
    pool: &WorkPool,
    search: &CapacitySearch,
    streams: usize,
) -> CapacityProbe {
    let (arrivals, config) = search.fleet(streams);
    let input = ServeInput {
        frame_sets,
        arrivals: &arrivals,
    };
    let report = serve(pipeline, &input, &config, pool);
    let dropped = report.shed() + report.rejected_queue() + report.rejected_budget();
    CapacityProbe {
        streams,
        p99_us: report.p99_us(),
        dropped,
        healthy: dropped == 0 && report.p99_us() <= search.slo_p99_us,
    }
}

/// Finds the largest fleet size that holds the SLO: double from a small
/// fleet until unhealthy (or the ceiling), then bisect the boundary.
/// Deterministic: virtual time makes every probe a pure function of the
/// configuration.
pub fn max_sustained_streams(
    pipeline: &RecognitionPipeline,
    frame_sets: &[Vec<GrayImage>],
    pool: &WorkPool,
    search: &CapacitySearch,
) -> CapacityResult {
    let mut probes = Vec::new();
    let mut lo = 0usize; // largest healthy so far
    let mut streams = 16.min(search.max_probe_streams);
    let mut first_unhealthy = None;
    loop {
        let p = probe(pipeline, frame_sets, pool, search, streams);
        probes.push(p);
        if p.healthy {
            lo = streams;
            if streams >= search.max_probe_streams {
                break; // ceiling reached while healthy
            }
            streams = (streams * 2).min(search.max_probe_streams);
        } else {
            first_unhealthy = Some(streams);
            break;
        }
    }
    if let Some(mut hi) = first_unhealthy {
        // invariant: lo healthy (or 0), hi unhealthy; pin the boundary
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let p = probe(pipeline, frame_sets, pool, search, mid);
            probes.push(p);
            if p.healthy {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    CapacityResult {
        max_sustained_streams: lo,
        probes,
    }
}

/// Renders the study as the JSON document committed at `BENCH_serve.json`
/// (hand-rolled: the workspace has no JSON dependency).
pub fn serve_json(
    workers: usize,
    threads_flag: Option<usize>,
    runs: &[CanonicalRun],
    search: &CapacitySearch,
    capacity: &CapacityResult,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"benchmark\": \"deterministic many-stream serving: latency SLOs and sustained capacity\",\n",
    );
    let _ = writeln!(
        s,
        "  \"metadata\": {{\n    \"threads_flag\": {},\n    \"available_parallelism\": {},\n    \"workers\": {}\n  }},",
        threads_flag
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".to_owned()),
        hdc_runtime::available_workers(),
        workers,
    );
    s.push_str("  \"protocol\": {\n");
    s.push_str("    \"time\": \"latencies are virtual microseconds from the serving cost model keyed by gate outcome - reproducible on any host; wall_s is the real cost of driving the run\",\n");
    s.push_str("    \"workloads\": \"the three golden workloads (tests/golden/serve_digests.txt): steady under-capacity with LRU churn, bursty against the token-bucket budget, overload at ~2x capacity\",\n");
    s.push_str("    \"capacity\": \"doubling ladder + bisection for the largest ~30 fps fleet with zero drops and p99 <= SLO; deterministic at any --threads\",\n");
    s.push_str("    \"note\": \"wall_s measured on however many hardware threads the host exposes - see available_parallelism\"\n");
    s.push_str("  },\n");
    s.push_str("  \"workloads\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let r = &run.report;
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"shards\": {}, \"offered\": {}, \"decided\": {}, \"shed\": {}, \
             \"rejected_budget\": {}, \"rejected_queue\": {}, \"evictions\": {}, \"restores\": {}, \
             \"queue_peak\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"digest\": \"{}\", \"wall_s\": {:.3}}}{}",
            run.name,
            r.shards,
            r.offered(),
            r.decided(),
            r.shed(),
            r.rejected_budget(),
            r.rejected_queue(),
            r.evictions(),
            r.restores(),
            r.queue_peak,
            r.p50_us(),
            r.p95_us(),
            r.p99_us(),
            r.digest(),
            run.wall_s,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"capacity\": {{\n    \"slo_p99_us\": {},\n    \"stream_period_us\": {},\n    \"shards\": {},\n    \"frames_per_stream\": {},\n    \"max_probe_streams\": {},\n    \"max_sustained_streams\": {},\n    \"probes\": [",
        search.slo_p99_us,
        search.period_us,
        search.shards,
        search.frames_per_stream,
        search.max_probe_streams,
        capacity.max_sustained_streams,
    );
    for (i, p) in capacity.probes.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{\"streams\": {}, \"p99_us\": {}, \"dropped\": {}, \"healthy\": {}}}{}",
            p.streams,
            p.p99_us,
            p.dropped,
            p.healthy,
            if i + 1 < capacity.probes.len() {
                ","
            } else {
                ""
            }
        );
    }
    s.push_str("    ]\n  }\n");
    s.push_str("}\n");
    s
}

/// The golden pipeline + frame sets the serving bench shares with the
/// conformance suite (one place to build them, so the bench measures
/// exactly what the goldens pin).
pub fn serving_fixture() -> (RecognitionPipeline, Vec<Vec<GrayImage>>) {
    (golden_pipeline(), golden_frame_sets())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_search_converges_and_is_deterministic() {
        let (pipeline, frame_sets) = serving_fixture();
        let search = CapacitySearch {
            slo_p99_us: 20_000,
            period_us: 33_333,
            frames_per_stream: 8,
            shards: 1,
            max_probe_streams: 64,
        };
        let pool = WorkPool::with_threads(Some(2));
        let a = max_sustained_streams(&pipeline, &frame_sets, &pool, &search);
        assert!(
            a.max_sustained_streams >= 16,
            "a single shard holds a small fleet"
        );
        assert!(!a.probes.is_empty());
        // bisection pins an exact boundary: lo healthy, lo+1 unhealthy
        // (unless the ceiling was reached while still healthy)
        if a.max_sustained_streams < search.max_probe_streams {
            let next = probe(
                &pipeline,
                &frame_sets,
                &pool,
                &search,
                a.max_sustained_streams + 1,
            );
            assert!(!next.healthy, "boundary must be exact");
        }
        let b = max_sustained_streams(
            &pipeline,
            &frame_sets,
            &WorkPool::with_threads(Some(1)),
            &search,
        );
        assert_eq!(
            a.max_sustained_streams, b.max_sustained_streams,
            "capacity is a property of the config, not the worker count"
        );
    }

    #[test]
    fn serve_json_is_well_formed_enough() {
        let (pipeline, frame_sets) = serving_fixture();
        let pool = WorkPool::with_threads(Some(2));
        let runs = canonical_study(&pipeline, &frame_sets, &pool);
        let search = CapacitySearch::smoke();
        let capacity = CapacityResult {
            max_sustained_streams: 64,
            probes: vec![CapacityProbe {
                streams: 64,
                p99_us: 900,
                dropped: 0,
                healthy: true,
            }],
        };
        let json = serve_json(2, Some(2), &runs, &search, &capacity);
        assert!(json.contains("\"name\": \"steady\""));
        assert!(json.contains("\"name\": \"overload\""));
        assert!(json.contains("\"max_sustained_streams\": 64"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
