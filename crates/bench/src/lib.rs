//! Experiment harness for the `hdc` reproduction.
//!
//! Every quantitative claim, table and figure of the paper maps to one
//! experiment function here (see `DESIGN.md` for the index). The
//! `run_experiments` binary prints them; `EXPERIMENTS.md` archives a run.
//!
//! Criterion benches (latency/throughput, E4/E10/E11 timing halves) live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod frames;
pub mod kernels;
pub mod report;
pub mod scaling;
pub mod serve;
pub mod streams;
pub mod throughput;

pub use experiments::{all_experiments, run_experiment, ExperimentId};
