//! E4 (throughput half): sustained frames-per-second of the full pipeline at
//! several camera resolutions, against the paper's 30 fps (native) and
//! 60 fps (hardware offload) bars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_vision::{PipelineConfig, RecognitionPipeline};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_throughput");
    for (w, h) in [(320u32, 240u32), (640, 480), (1280, 960)] {
        let view = ViewSpec {
            azimuth_deg: 0.0,
            altitude_m: 5.0,
            distance_m: 3.0,
            width: w,
            height: h,
            focal_px: w as f64,
        };
        let mut pipeline = RecognitionPipeline::new(PipelineConfig::default());
        pipeline.calibrate_from_views(&view);
        let frame = render_sign(MarshallingSign::Yes, &view);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::new("recognize", format!("{w}x{h}")),
            &frame,
            |b, frame| b.iter(|| pipeline.recognize(frame)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
