//! E10 (cost half): how the SAX parameters drive matching cost — encoding,
//! rotation-invariant word matching, and the lower-bound pruned index lookup
//! against an exhaustive scan on a grown template database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_sax::{min_rotated_mindist, SaxEncoder, SaxIndex, SaxParams};
use hdc_timeseries::min_rotated_euclidean;

fn series(n: usize, seed: u64) -> Vec<f64> {
    // deterministic pseudo-random smooth series
    (0..n)
        .map(|i| {
            let x = i as f64 * 0.13 + seed as f64;
            (x.sin() * 1.3 + (2.7 * x).cos() * 0.4) + ((seed % 7) as f64) * 0.1
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let data = series(128, 1);
    let mut group = c.benchmark_group("sax_encode");
    for (w, a) in [(8usize, 4u8), (16, 4), (32, 8), (64, 12)] {
        let enc = SaxEncoder::new(SaxParams::new(w, a).unwrap());
        group.bench_with_input(
            BenchmarkId::new("encode", format!("w{w}_a{a}")),
            &data,
            |b, d| b.iter(|| enc.encode(d)),
        );
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotation_invariant_matching");
    let q = series(128, 1);
    let t = series(128, 2);
    for (w, a) in [(16usize, 4u8), (32, 8)] {
        let enc = SaxEncoder::new(SaxParams::new(w, a).unwrap());
        let wq = enc.encode(&q);
        let wt = enc.encode(&t);
        group.bench_function(format!("word_mindist_w{w}_a{a}"), |b| {
            b.iter(|| min_rotated_mindist(&wq, &wt, 128))
        });
    }
    group.bench_function("exact_euclidean_128", |b| {
        b.iter(|| min_rotated_euclidean(&q, &t, 1))
    });
    group.finish();
}

fn bench_index_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_lookup");
    let q = series(128, 999);
    for db_size in [3usize, 30, 300] {
        let mut idx = SaxIndex::new(SaxParams::default(), 128);
        for i in 0..db_size {
            idx.insert(format!("t{i}"), &series(128, i as u64));
        }
        group.bench_with_input(
            BenchmarkId::new("pruned_best_match", db_size),
            &q,
            |b, q| b.iter(|| idx.best_match(q)),
        );
        group.bench_with_input(
            BenchmarkId::new("exhaustive_best_two", db_size),
            &q,
            |b, q| b.iter(|| idx.best_two(q)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_matching, bench_index_scaling);
criterion_main!(benches);
