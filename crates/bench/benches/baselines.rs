//! E11 (cost half): per-frame classification cost of the paper's SAX
//! approach vs the classical baselines, on identical pre-segmented masks.
//!
//! The shape to reproduce: SAX ≈ the cheap descriptors, far below DTW, while
//! (per the accuracy half in `run_experiments e11`) matching DTW's accuracy.

use criterion::{criterion_group, criterion_main, Criterion};
use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_raster::threshold::binarize;
use hdc_raster::Bitmap;
use hdc_sax::SaxParams;
use hdc_vision::classifiers::{
    DtwClassifier, HuClassifier, SaxClassifier, SignClassifier, ZoningClassifier,
};

fn sign_mask(sign: MarshallingSign) -> Bitmap {
    let frame = render_sign(sign, &ViewSpec::paper_default(0.0, 5.0, 3.0));
    binarize(&frame, 128)
}

fn trained<C: SignClassifier>(mut c: C) -> C {
    for sign in MarshallingSign::ALL {
        assert!(c.train(sign.label(), &sign_mask(sign)));
    }
    c
}

fn bench_baselines(c: &mut Criterion) {
    let query = sign_mask(MarshallingSign::No);
    let sax = trained(SaxClassifier::new(SaxParams::default(), 128));
    let dtw_tight = trained(DtwClassifier::new(128, 8, 8));
    let dtw_full = trained(DtwClassifier::new(128, usize::MAX, 1));
    let hu = trained(HuClassifier::new());
    let zoning = trained(ZoningClassifier::new(4));

    let mut group = c.benchmark_group("baselines_classify");
    group.bench_function("sax", |b| b.iter(|| sax.classify(&query)));
    group.bench_function("dtw_banded_stride8", |b| {
        b.iter(|| dtw_tight.classify(&query))
    });
    group.bench_function("dtw_full_exhaustive", |b| {
        b.iter(|| dtw_full.classify(&query))
    });
    group.bench_function("hu_moments", |b| b.iter(|| hu.classify(&query)));
    group.bench_function("zoning_4x4", |b| b.iter(|| zoning.classify(&query)));
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
