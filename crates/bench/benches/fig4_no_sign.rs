//! E4 (timing half of Figure 4): end-to-end recognition latency of the "No"
//! sign at relative azimuth 0° and 65°.
//!
//! The paper reports 38 ms (0°) and 27 ms (65°) in unoptimised Python; the
//! shape to reproduce is (a) both far below the 33 ms 30-fps budget in
//! native code, (b) the oblique frame cheaper than the frontal one.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_vision::{PipelineConfig, RecognitionPipeline};

fn calibrated() -> RecognitionPipeline {
    let mut p = RecognitionPipeline::new(PipelineConfig::default());
    p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
    p
}

fn bench_fig4(c: &mut Criterion) {
    let pipeline = calibrated();
    let frame0 = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0));
    let frame65 = render_sign(
        MarshallingSign::No,
        &ViewSpec::paper_default(65.0, 5.0, 3.0),
    );

    let mut group = c.benchmark_group("fig4_no_sign");
    group.bench_function("recognize_azimuth_0", |b| {
        b.iter(|| pipeline.recognize(&frame0))
    });
    group.bench_function("recognize_azimuth_65", |b| {
        b.iter(|| pipeline.recognize(&frame65))
    });
    // the paper's canonical-reference enrollment cost (one-off)
    group.bench_function("calibrate_from_canonical_views", |b| {
        b.iter_batched(
            || RecognitionPipeline::new(PipelineConfig::default()),
            |mut p| {
                p.calibrate_from_views(&ViewSpec::paper_default(0.0, 5.0, 3.0));
                p
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
