//! Substrate micro-benches: the stages behind the pipeline numbers
//! (segmentation, components, contour tracing, signature math, rendering,
//! DTW variants) so regressions can be localised.

use criterion::{criterion_group, criterion_main, Criterion};
use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
use hdc_geometry::Vec2;
use hdc_raster::contour::trace_outer_contour;
use hdc_raster::threshold::{binarize, otsu_threshold};
use hdc_raster::{draw, label_components, largest_component, Connectivity, GrayImage};
use hdc_timeseries::{dtw_banded, paa, resample, TimeSeries};

fn test_frame() -> GrayImage {
    render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0))
}

fn bench_raster(c: &mut Criterion) {
    let frame = test_frame();
    let mask = binarize(&frame, 128);
    let (blob, _) = largest_component(&mask, Connectivity::Eight).unwrap();

    let mut group = c.benchmark_group("raster");
    group.bench_function("binarize_640x480", |b| b.iter(|| binarize(&frame, 128)));
    group.bench_function("otsu_threshold_640x480", |b| {
        b.iter(|| otsu_threshold(&frame))
    });
    group.bench_function("label_components_640x480", |b| {
        b.iter(|| label_components(&mask, Connectivity::Eight))
    });
    group.bench_function("trace_outer_contour", |b| {
        b.iter(|| trace_outer_contour(&blob))
    });
    group.bench_function("fill_disk_r40", |b| {
        b.iter(|| {
            let mut img = GrayImage::new(128, 128);
            draw::fill_disk(&mut img, Vec2::new(64.0, 64.0), 40.0, 255);
            img
        })
    });
    group.finish();
}

fn bench_series(c: &mut Criterion) {
    let raw: Vec<f64> = (0..700).map(|i| (i as f64 * 0.05).sin()).collect();
    let z128 = TimeSeries::new(resample(&raw, 128))
        .znormalized()
        .into_values();
    let other: Vec<f64> = (0..128).map(|i| (i as f64 * 0.11).cos()).collect();

    let mut group = c.benchmark_group("timeseries");
    group.bench_function("resample_700_to_128", |b| b.iter(|| resample(&raw, 128)));
    group.bench_function("znormalize_128", |b| {
        b.iter(|| TimeSeries::new(z128.clone()).znormalized())
    });
    group.bench_function("paa_128_to_16", |b| b.iter(|| paa(&z128, 16)));
    group.bench_function("dtw_full_128", |b| {
        b.iter(|| dtw_banded(&z128, &other, usize::MAX))
    });
    group.bench_function("dtw_band8_128", |b| b.iter(|| dtw_banded(&z128, &other, 8)));
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_render");
    let view = ViewSpec::paper_default(0.0, 5.0, 3.0);
    group.bench_function("render_sign_640x480", |b| {
        b.iter(|| render_sign(MarshallingSign::Yes, &view))
    });
    let small = ViewSpec {
        width: 320,
        height: 240,
        focal_px: 320.0,
        ..view
    };
    group.bench_function("render_sign_320x240", |b| {
        b.iter(|| render_sign(MarshallingSign::Yes, &small))
    });
    group.finish();
}

criterion_group!(benches, bench_raster, bench_series, bench_render);
criterion_main!(benches);
