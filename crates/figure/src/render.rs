//! Rendering posed signallers into grayscale frames.

use crate::pose::{MarshallingSign, Pose};
use crate::skeleton::{BodyPart, Signaller};
use hdc_geometry::{CameraIntrinsics, PinholeCamera, Vec2, Vec3};
use hdc_raster::{draw, GrayImage};
use serde::{Deserialize, Serialize};

/// The viewing geometry of one frame, in the paper's own parameters:
/// relative azimuth, drone altitude and horizontal distance (Figure 4 uses
/// altitude 5 m, distance 3 m, azimuth 0° and 65°).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewSpec {
    /// Relative azimuth of the drone with respect to the signaller's facing
    /// direction, in degrees: 0° is full-on, 90° is a pure side view.
    pub azimuth_deg: f64,
    /// Drone (camera) altitude above ground, metres.
    pub altitude_m: f64,
    /// Horizontal distance from drone to signaller, metres.
    pub distance_m: f64,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Focal length in pixels.
    pub focal_px: f64,
}

impl ViewSpec {
    /// The reproduction's standard camera (640×480, ~53° horizontal FOV) at
    /// the given geometry. Matches the paper's evaluation setup: a low-cost
    /// drone camera looking at a signaller 2–5 m below-and-ahead.
    pub fn paper_default(azimuth_deg: f64, altitude_m: f64, distance_m: f64) -> Self {
        ViewSpec {
            azimuth_deg,
            altitude_m,
            distance_m,
            width: 640,
            height: 480,
            focal_px: 640.0,
        }
    }

    /// The camera implied by this view, positioned at the relative azimuth
    /// around a signaller standing at the origin facing `+y`, aimed at the
    /// signaller's chest.
    ///
    /// # Panics
    /// Panics if `distance_m` is zero or negative (the camera would coincide
    /// with the signaller or the look-at would degenerate).
    pub fn camera(&self) -> PinholeCamera {
        assert!(self.distance_m > 0.0, "camera distance must be positive");
        let az = self.azimuth_deg.to_radians();
        // Signaller faces +y; azimuth 0 puts the camera straight ahead.
        let ground = Vec2::new(self.distance_m * az.sin(), self.distance_m * az.cos());
        let eye = Vec3::from_xy(ground, self.altitude_m);
        let target = Vec3::new(0.0, 0.0, 1.2); // chest height
        PinholeCamera::look_at(
            eye,
            target,
            CameraIntrinsics::new(self.width, self.height, self.focal_px),
        )
    }

    /// A signaller at the origin facing `+y`, holding `pose`.
    pub fn signaller(&self, pose: Pose) -> Signaller {
        Signaller::new(Vec2::ZERO, std::f64::consts::FRAC_PI_2, pose)
    }
}

/// Renders a posed signaller through a camera into a fresh grayscale frame
/// (background 0, silhouette 255).
pub fn render_signaller(signaller: &Signaller, camera: &PinholeCamera) -> GrayImage {
    let intr = camera.intrinsics();
    let mut img = GrayImage::new(intr.width(), intr.height());
    paint_signaller(signaller, camera, &mut img);
    img
}

/// Paints a signaller's silhouette into an existing frame (for multi-actor
/// scenes).
pub fn paint_signaller(signaller: &Signaller, camera: &PinholeCamera, img: &mut GrayImage) {
    for part in signaller.body_parts() {
        match part {
            BodyPart::Capsule(c) => {
                if let Some(p) = camera.project_capsule(&c) {
                    draw::fill_tapered_capsule(img, p.a, p.radius_a, p.b, p.radius_b, 255);
                }
            }
            BodyPart::Sphere(s) => {
                if let Some(d) = camera.project_sphere(&s) {
                    draw::fill_disk(img, d.center, d.radius, 255);
                }
            }
        }
    }
}

/// Convenience for the experiments: renders one marshalling sign under a
/// view specification.
///
/// # Example
/// ```
/// use hdc_figure::{render_sign, MarshallingSign, ViewSpec};
/// let img = render_sign(MarshallingSign::Yes, &ViewSpec::paper_default(0.0, 5.0, 3.0));
/// let lit = img.pixels().iter().filter(|p| **p > 0).count();
/// assert!(lit > 500, "figure occupies a useful number of pixels, got {lit}");
/// ```
pub fn render_sign(sign: MarshallingSign, view: &ViewSpec) -> GrayImage {
    let signaller = view.signaller(Pose::for_sign(sign));
    render_signaller(&signaller, &view.camera())
}

/// Renders an arbitrary pose under a view specification.
pub fn render_pose(pose: Pose, view: &ViewSpec) -> GrayImage {
    let signaller = view.signaller(pose);
    render_signaller(&signaller, &view.camera())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(img: &GrayImage) -> usize {
        img.pixels().iter().filter(|p| **p > 0).count()
    }

    #[test]
    fn frontal_view_shows_figure() {
        let img = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 5.0, 3.0),
        );
        assert!(lit(&img) > 1000, "figure visible: {} px", lit(&img));
    }

    #[test]
    fn farther_is_smaller() {
        let near = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 2.0, 3.0),
        );
        let far = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(0.0, 8.0, 3.0),
        );
        assert!(
            lit(&near) > 2 * lit(&far),
            "{} vs {}",
            lit(&near),
            lit(&far)
        );
    }

    #[test]
    fn side_view_is_narrower() {
        let front = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, 5.0, 3.0));
        let side = render_sign(
            MarshallingSign::No,
            &ViewSpec::paper_default(90.0, 5.0, 3.0),
        );
        // foreshortening: the side view covers fewer pixels (arms overlap torso)
        assert!(
            lit(&side) < lit(&front),
            "{} vs {}",
            lit(&side),
            lit(&front)
        );
    }

    #[test]
    fn different_signs_render_differently() {
        let v = ViewSpec::paper_default(0.0, 5.0, 3.0);
        let yes = render_sign(MarshallingSign::Yes, &v);
        let no = render_sign(MarshallingSign::No, &v);
        let diff = yes
            .pixels()
            .iter()
            .zip(no.pixels())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff > 500, "signs must differ in silhouette: {diff}");
    }

    #[test]
    fn azimuth_symmetry_for_symmetric_sign() {
        // Yes is left-right symmetric: ±azimuth give mirror images with equal
        // pixel counts (within rasterisation noise)
        let l = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(-40.0, 5.0, 3.0),
        );
        let r = render_sign(
            MarshallingSign::Yes,
            &ViewSpec::paper_default(40.0, 5.0, 3.0),
        );
        let (ll, lr) = (lit(&l) as f64, lit(&r) as f64);
        assert!((ll - lr).abs() / ll < 0.05, "{ll} vs {lr}");
    }

    #[test]
    fn paint_into_shared_frame() {
        let v = ViewSpec::paper_default(0.0, 5.0, 3.0);
        let cam = v.camera();
        let mut img = GrayImage::new(v.width, v.height);
        let a = v.signaller(Pose::neutral());
        let mut b = v.signaller(Pose::neutral());
        b = Signaller::new(
            Vec2::new(1.5, 0.0),
            std::f64::consts::FRAC_PI_2,
            Pose::neutral(),
        )
        .with_dimensions(*b.dimensions());
        paint_signaller(&a, &cam, &mut img);
        let after_one = lit(&img);
        paint_signaller(&b, &cam, &mut img);
        assert!(lit(&img) > after_one, "second actor adds pixels");
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn zero_distance_rejected() {
        let mut v = ViewSpec::paper_default(0.0, 5.0, 3.0);
        v.distance_m = 0.0;
        let _ = v.camera();
    }

    #[test]
    fn figure_inside_frame_at_paper_geometries() {
        // every altitude of the paper's sweep keeps the signaller in frame
        for alt in [2.0, 3.0, 4.0, 5.0] {
            let img = render_sign(MarshallingSign::No, &ViewSpec::paper_default(0.0, alt, 3.0));
            assert!(lit(&img) > 800, "altitude {alt}: {} px", lit(&img));
            // nothing on the border rows/cols ⇒ fully framed
            let w = img.width();
            let h = img.height();
            let mut border = 0;
            for x in 0..w {
                if img.get(x, 0) != Some(0) || img.get(x, h - 1) != Some(0) {
                    border += 1;
                }
            }
            assert_eq!(border, 0, "altitude {alt} clips the figure vertically");
        }
    }
}
