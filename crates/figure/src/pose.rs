//! Poses: joint angles for the marshalling signs and distractor postures.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The static marshalling signs of the paper's human→drone language
/// (Section III, Figure 3), plus the neutral stance.
///
/// * [`MarshallingSign::AttentionGained`] — hands raised to protect the face
///   (the "human-reflex" sign acknowledging the drone's poke),
/// * [`MarshallingSign::Yes`] — both arms straight up (Swiss emergency "Y"),
/// * [`MarshallingSign::No`] — one arm up, one arm down (the diagonal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarshallingSign {
    /// Both forearms raised in front of the face: "you have my attention".
    AttentionGained,
    /// Both arms straight up: affirmative.
    Yes,
    /// One arm up, one arm down: negative.
    No,
}

impl MarshallingSign {
    /// All three signs, in a fixed order.
    pub const ALL: [MarshallingSign; 3] = [
        MarshallingSign::AttentionGained,
        MarshallingSign::Yes,
        MarshallingSign::No,
    ];

    /// Canonical label used in sign databases and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            MarshallingSign::AttentionGained => "AttentionGained",
            MarshallingSign::Yes => "Yes",
            MarshallingSign::No => "No",
        }
    }
}

impl fmt::Display for MarshallingSign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Joint angles of the signaller, all in radians.
///
/// Arms move in the signaller's frontal (coronal) plane, which is what makes
/// the signs readable from the front and degenerate from the side:
///
/// * `abduction` — angle of the upper arm from "straight down": `0` hangs at
///   the side, `π/2` points horizontally outward, `π` points straight up.
/// * `elbow_flexion` — in-plane bend of the forearm toward the midline/head.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Left-arm abduction angle.
    pub left_abduction: f64,
    /// Left elbow flexion.
    pub left_flexion: f64,
    /// Right-arm abduction angle.
    pub right_abduction: f64,
    /// Right elbow flexion.
    pub right_flexion: f64,
    /// Lateral stance half-width of the feet in metres.
    pub stance_half_width: f64,
}

impl Pose {
    /// Neutral stance: arms hanging, feet slightly apart.
    pub fn neutral() -> Pose {
        Pose {
            left_abduction: 0.12,
            left_flexion: 0.05,
            right_abduction: 0.12,
            right_flexion: 0.05,
            stance_half_width: 0.12,
        }
    }

    /// The pose for a marshalling sign.
    pub fn for_sign(sign: MarshallingSign) -> Pose {
        match sign {
            // Hands up in front of the face, elbows kept low: the compact
            // "protect the face" reflex. Upper arms barely lifted, forearms
            // folded sharply upward so the hands sit beside the head.
            MarshallingSign::AttentionGained => Pose {
                left_abduction: 0.35,
                left_flexion: 2.45,
                right_abduction: 0.35,
                right_flexion: 2.45,
                stance_half_width: 0.12,
            },
            // Both arms straight up and slightly outward: the "Y".
            MarshallingSign::Yes => Pose {
                left_abduction: 2.45,
                left_flexion: 0.0,
                right_abduction: 2.45,
                right_flexion: 0.0,
                stance_half_width: 0.12,
            },
            // Right arm straight up, left arm down-and-out: the diagonal.
            MarshallingSign::No => Pose {
                left_abduction: 0.65,
                left_flexion: 0.0,
                right_abduction: 2.85,
                right_flexion: 0.0,
                stance_half_width: 0.12,
            },
        }
    }

    /// A waving distractor: one arm out horizontally with a bent elbow.
    pub fn waving() -> Pose {
        Pose {
            left_abduction: 0.12,
            left_flexion: 0.05,
            right_abduction: 1.55,
            right_flexion: 1.1,
            stance_half_width: 0.12,
        }
    }

    /// Hands-on-hips distractor (akimbo).
    pub fn akimbo() -> Pose {
        Pose {
            left_abduction: 0.55,
            left_flexion: 1.5,
            right_abduction: 0.55,
            right_flexion: 1.5,
            stance_half_width: 0.15,
        }
    }

    /// Joint-wise linear interpolation toward `other` (`t = 0` gives `self`).
    ///
    /// The building block for *dynamic* marshalling signals: animate between
    /// key poses and render each interpolated frame.
    pub fn lerp(&self, other: &Pose, t: f64) -> Pose {
        let l = |a: f64, b: f64| a + (b - a) * t;
        Pose {
            left_abduction: l(self.left_abduction, other.left_abduction),
            left_flexion: l(self.left_flexion, other.left_flexion),
            right_abduction: l(self.right_abduction, other.right_abduction),
            right_flexion: l(self.right_flexion, other.right_flexion),
            stance_half_width: l(self.stance_half_width, other.stance_half_width),
        }
    }

    /// One frame of the dynamic *wave-off* gesture (aviation marshalling:
    /// abort!): the right arm sweeps between low and overhead as `phase`
    /// advances through a cycle (`phase` in cycles, i.e. 1.0 = one full wave).
    pub fn wave_off_phase(phase: f64) -> Pose {
        let s = (std::f64::consts::TAU * phase).sin(); // -1..1
        Pose {
            left_abduction: 0.15,
            left_flexion: 0.05,
            right_abduction: 1.55 + 0.85 * s, // sweeps ~0.7..2.4 rad
            right_flexion: 0.1,
            stance_half_width: 0.12,
        }
    }

    /// Adds zero-mean uniform jitter of `±magnitude` radians to every joint —
    /// models the variation between real humans holding "the same" sign.
    pub fn jittered<R: Rng>(&self, magnitude: f64, rng: &mut R) -> Pose {
        let mut j = |v: f64| v + rng.gen_range(-magnitude..=magnitude);
        Pose {
            left_abduction: j(self.left_abduction),
            left_flexion: j(self.left_flexion),
            right_abduction: j(self.right_abduction),
            right_flexion: j(self.right_flexion),
            stance_half_width: (self.stance_half_width + rng.gen_range(-0.02..=0.02)).max(0.02),
        }
    }

    /// Whether every joint angle is within anatomically plausible bounds.
    pub fn is_plausible(&self) -> bool {
        let ok = |v: f64| (-0.3..=3.3).contains(&v);
        ok(self.left_abduction)
            && ok(self.right_abduction)
            && (-0.3..=2.8).contains(&self.left_flexion)
            && (-0.3..=2.8).contains(&self.right_flexion)
            && self.stance_half_width > 0.0
    }
}

impl Default for Pose {
    fn default() -> Self {
        Pose::neutral()
    }
}

/// The full set of postures used by the experiments: the three signs plus
/// labelled distractors (used to measure false-positive behaviour).
#[derive(Debug, Clone)]
pub struct PoseLibrary;

impl PoseLibrary {
    /// `(label, pose)` pairs for every posture in the library.
    pub fn all() -> Vec<(&'static str, Pose)> {
        vec![
            (
                "AttentionGained",
                Pose::for_sign(MarshallingSign::AttentionGained),
            ),
            ("Yes", Pose::for_sign(MarshallingSign::Yes)),
            ("No", Pose::for_sign(MarshallingSign::No)),
            ("neutral", Pose::neutral()),
            ("waving", Pose::waving()),
            ("akimbo", Pose::akimbo()),
        ]
    }

    /// Only the distractor postures (not part of the sign language).
    pub fn distractors() -> Vec<(&'static str, Pose)> {
        vec![
            ("neutral", Pose::neutral()),
            ("waving", Pose::waving()),
            ("akimbo", Pose::akimbo()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sign_labels() {
        assert_eq!(MarshallingSign::Yes.label(), "Yes");
        assert_eq!(MarshallingSign::No.to_string(), "No");
        assert_eq!(MarshallingSign::ALL.len(), 3);
    }

    #[test]
    fn all_sign_poses_plausible() {
        for sign in MarshallingSign::ALL {
            assert!(Pose::for_sign(sign).is_plausible(), "{sign}");
        }
        assert!(Pose::neutral().is_plausible());
        assert!(Pose::waving().is_plausible());
        assert!(Pose::akimbo().is_plausible());
    }

    #[test]
    fn signs_are_distinct_poses() {
        let a = Pose::for_sign(MarshallingSign::AttentionGained);
        let y = Pose::for_sign(MarshallingSign::Yes);
        let n = Pose::for_sign(MarshallingSign::No);
        assert_ne!(a, y);
        assert_ne!(y, n);
        assert_ne!(a, n);
    }

    #[test]
    fn no_is_asymmetric() {
        let n = Pose::for_sign(MarshallingSign::No);
        assert!(n.right_abduction > 2.0, "one arm up");
        assert!(n.left_abduction < 1.0, "one arm down");
    }

    #[test]
    fn yes_is_symmetric() {
        let y = Pose::for_sign(MarshallingSign::Yes);
        assert_eq!(y.left_abduction, y.right_abduction);
        assert!(y.left_abduction > 2.0, "both arms up");
    }

    #[test]
    fn jitter_stays_near_base() {
        let base = Pose::for_sign(MarshallingSign::Yes);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let j = base.jittered(0.05, &mut rng);
            assert!((j.left_abduction - base.left_abduction).abs() <= 0.05 + 1e-12);
            assert!(j.stance_half_width > 0.0);
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Pose::neutral();
        let b = Pose::for_sign(MarshallingSign::Yes);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!(
            (mid.right_abduction - (a.right_abduction + b.right_abduction) / 2.0).abs() < 1e-12
        );
    }

    #[test]
    fn wave_off_sweeps_the_right_arm() {
        let down = Pose::wave_off_phase(0.75); // sin = -1 → lowest
        let up = Pose::wave_off_phase(0.25); // sin = +1 → highest
        assert!(up.right_abduction - down.right_abduction > 1.5);
        assert!(down.is_plausible() && up.is_plausible());
        // periodicity
        let p0 = Pose::wave_off_phase(0.1);
        let p1 = Pose::wave_off_phase(1.1);
        assert!((p0.right_abduction - p1.right_abduction).abs() < 1e-9);
    }

    #[test]
    fn library_contents() {
        assert_eq!(PoseLibrary::all().len(), 6);
        assert_eq!(PoseLibrary::distractors().len(), 3);
    }
}
