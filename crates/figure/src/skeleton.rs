//! The articulated skeleton: body dimensions and world-frame body parts.

use crate::pose::Pose;
use hdc_geometry::{Capsule3, Mat3, Sphere3, Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Anthropometric dimensions of the signaller, in metres.
///
/// Defaults approximate a 1.8 m adult. The silhouette is a union of capsules
/// (limbs, torso) and a sphere (head).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BodyDimensions {
    /// Height of the hip line above ground.
    pub hip_height: f64,
    /// Height of the shoulder line above ground.
    pub shoulder_height: f64,
    /// Half-distance between the shoulders.
    pub shoulder_half_width: f64,
    /// Half-distance between the hips.
    pub hip_half_width: f64,
    /// Head-sphere centre height above ground.
    pub head_height: f64,
    /// Head-sphere radius.
    pub head_radius: f64,
    /// Upper-arm length.
    pub upper_arm: f64,
    /// Forearm (+hand) length.
    pub forearm: f64,
    /// Torso capsule radius.
    pub torso_radius: f64,
    /// Arm capsule radius.
    pub arm_radius: f64,
    /// Leg capsule radius.
    pub leg_radius: f64,
}

impl BodyDimensions {
    /// Typical adult proportions (stature ≈ 1.8 m).
    pub fn adult() -> Self {
        BodyDimensions {
            hip_height: 0.95,
            shoulder_height: 1.45,
            shoulder_half_width: 0.21,
            hip_half_width: 0.11,
            head_height: 1.66,
            head_radius: 0.11,
            upper_arm: 0.31,
            forearm: 0.35,
            torso_radius: 0.15,
            arm_radius: 0.05,
            leg_radius: 0.08,
        }
    }

    /// Total stature (top of head).
    pub fn stature(&self) -> f64 {
        self.head_height + self.head_radius
    }

    /// Uniformly scales every dimension by `factor` (a shorter or taller
    /// person with identical proportions).
    ///
    /// # Panics
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> BodyDimensions {
        assert!(factor > 0.0, "scale factor must be positive");
        BodyDimensions {
            hip_height: self.hip_height * factor,
            shoulder_height: self.shoulder_height * factor,
            shoulder_half_width: self.shoulder_half_width * factor,
            hip_half_width: self.hip_half_width * factor,
            head_height: self.head_height * factor,
            head_radius: self.head_radius * factor,
            upper_arm: self.upper_arm * factor,
            forearm: self.forearm * factor,
            torso_radius: self.torso_radius * factor,
            arm_radius: self.arm_radius * factor,
            leg_radius: self.leg_radius * factor,
        }
    }

    /// Varies the body *proportions* (not overall size): multiplies limb
    /// lengths by `limb_factor` and trunk/limb girths by `girth_factor`.
    /// Models the anthropometric diversity of real orchard crews.
    ///
    /// # Panics
    /// Panics if either factor is not positive.
    pub fn with_proportions(&self, limb_factor: f64, girth_factor: f64) -> BodyDimensions {
        assert!(
            limb_factor > 0.0 && girth_factor > 0.0,
            "factors must be positive"
        );
        BodyDimensions {
            upper_arm: self.upper_arm * limb_factor,
            forearm: self.forearm * limb_factor,
            torso_radius: self.torso_radius * girth_factor,
            arm_radius: self.arm_radius * girth_factor,
            leg_radius: self.leg_radius * girth_factor,
            ..*self
        }
    }
}

impl Default for BodyDimensions {
    fn default() -> Self {
        BodyDimensions::adult()
    }
}

/// One solid of the signaller's body.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BodyPart {
    /// A capsule limb or torso segment.
    Capsule(Capsule3),
    /// The head sphere.
    Sphere(Sphere3),
}

/// A posed signaller placed in the world.
///
/// The signaller's local frame: origin at the feet midpoint, `+z` up, facing
/// along the world direction given by `heading` (radians, 0 = +x east).
/// Arms articulate in the frontal plane (lateral × vertical), so a camera at
/// relative azimuth 0 — directly ahead — sees the sign fully extended.
///
/// # Example
/// ```
/// use hdc_figure::{Signaller, Pose, MarshallingSign};
/// use hdc_geometry::Vec2;
/// let s = Signaller::new(Vec2::ZERO, std::f64::consts::FRAC_PI_2, Pose::for_sign(MarshallingSign::Yes));
/// let parts = s.body_parts();
/// assert_eq!(parts.len(), 9); // torso, girdle, head, 2 legs, 2×2 arm segments
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signaller {
    position: Vec2,
    heading: f64,
    pose: Pose,
    dims: BodyDimensions,
}

impl Signaller {
    /// Creates a signaller at a ground position with a facing direction.
    pub fn new(position: Vec2, heading: f64, pose: Pose) -> Self {
        Signaller {
            position,
            heading,
            pose,
            dims: BodyDimensions::adult(),
        }
    }

    /// Replaces the body dimensions (builder style).
    pub fn with_dimensions(mut self, dims: BodyDimensions) -> Self {
        self.dims = dims;
        self
    }

    /// Ground position.
    pub fn position(&self) -> Vec2 {
        self.position
    }

    /// Facing direction in radians (world frame, 0 = +x).
    pub fn heading(&self) -> f64 {
        self.heading
    }

    /// Current pose.
    pub fn pose(&self) -> &Pose {
        &self.pose
    }

    /// Sets a new pose.
    pub fn set_pose(&mut self, pose: Pose) {
        self.pose = pose;
    }

    /// Body dimensions.
    pub fn dimensions(&self) -> &BodyDimensions {
        &self.dims
    }

    /// Chest point (useful as a camera look-at target).
    pub fn chest(&self) -> Vec3 {
        self.local_to_world(Vec3::new(
            0.0,
            0.0,
            (self.dims.hip_height + self.dims.shoulder_height) / 2.0,
        ))
    }

    fn local_to_world(&self, p: Vec3) -> Vec3 {
        // Local frame: +y = facing, +x = signaller's right side as seen from
        // the front (i.e. lateral axis), +z up. World rotation about z maps
        // local +y onto the heading direction.
        let rot = Mat3::rotation_z(self.heading - std::f64::consts::FRAC_PI_2);
        rot * p + Vec3::from_xy(self.position, 0.0)
    }

    /// The arm segments for one side: `side = +1` (lateral +x) or `-1`.
    fn arm(&self, side: f64, abduction: f64, flexion: f64) -> [Capsule3; 2] {
        let d = &self.dims;
        let shoulder = Vec3::new(side * d.shoulder_half_width, 0.0, d.shoulder_height);
        // Frontal-plane direction: 0 = down, π/2 = lateral, π = up.
        let upper_dir = Vec3::new(side * abduction.sin(), 0.0, -abduction.cos());
        let elbow = shoulder + upper_dir * d.upper_arm;
        // Flexion rotates the forearm further in the same frontal plane,
        // toward the midline/head (continuing the abduction rotation).
        let fore_angle = abduction + flexion;
        let fore_dir = Vec3::new(side * fore_angle.sin(), 0.0, -fore_angle.cos());
        let wrist = elbow + fore_dir * d.forearm;
        [
            Capsule3::new(shoulder, elbow, d.arm_radius),
            Capsule3::new(elbow, wrist, d.arm_radius),
        ]
    }

    /// All body solids in world coordinates.
    pub fn body_parts(&self) -> Vec<BodyPart> {
        let d = &self.dims;
        let mut local: Vec<BodyPart> = Vec::with_capacity(10);

        // Torso: hip midline to neck.
        local.push(BodyPart::Capsule(Capsule3::new(
            Vec3::new(0.0, 0.0, d.hip_height),
            Vec3::new(0.0, 0.0, d.shoulder_height),
            d.torso_radius,
        )));
        // Shoulder girdle: connects the two shoulder joints through the
        // torso so the silhouette stays a single blob with the arms attached.
        local.push(BodyPart::Capsule(Capsule3::new(
            Vec3::new(-d.shoulder_half_width, 0.0, d.shoulder_height),
            Vec3::new(d.shoulder_half_width, 0.0, d.shoulder_height),
            d.arm_radius * 1.6,
        )));
        // Head.
        local.push(BodyPart::Sphere(Sphere3::new(
            Vec3::new(0.0, 0.0, d.head_height),
            d.head_radius,
        )));
        // Legs: hip → foot, feet apart by the stance width.
        for side in [-1.0, 1.0] {
            let hip = Vec3::new(side * d.hip_half_width, 0.0, d.hip_height);
            let foot = Vec3::new(side * self.pose.stance_half_width, 0.0, 0.0);
            local.push(BodyPart::Capsule(Capsule3::new(hip, foot, d.leg_radius)));
        }
        // Arms.
        for c in self.arm(-1.0, self.pose.left_abduction, self.pose.left_flexion) {
            local.push(BodyPart::Capsule(c));
        }
        for c in self.arm(1.0, self.pose.right_abduction, self.pose.right_flexion) {
            local.push(BodyPart::Capsule(c));
        }

        // Transform to world.
        local
            .into_iter()
            .map(|part| match part {
                BodyPart::Capsule(c) => BodyPart::Capsule(Capsule3::new(
                    self.local_to_world(c.a),
                    self.local_to_world(c.b),
                    c.radius,
                )),
                BodyPart::Sphere(s) => {
                    BodyPart::Sphere(Sphere3::new(self.local_to_world(s.center), s.radius))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pose::MarshallingSign;

    fn wrist_height(sig: &Signaller, right: bool) -> f64 {
        // the wrist is the far endpoint of the last arm capsule on that side
        let parts = sig.body_parts();
        let arm_caps: Vec<&Capsule3> = parts
            .iter()
            .filter_map(|p| match p {
                BodyPart::Capsule(c) => Some(c),
                _ => None,
            })
            .collect();
        // arms are the last 4 capsules: left upper, left fore, right upper, right fore
        let idx = if right {
            arm_caps.len() - 1
        } else {
            arm_caps.len() - 3
        };
        arm_caps[idx].b.z
    }

    #[test]
    fn part_count() {
        // torso + girdle + head + 2 legs + 2×2 arm segments
        let s = Signaller::new(Vec2::ZERO, 0.0, Pose::neutral());
        assert_eq!(s.body_parts().len(), 9);
    }

    #[test]
    fn stature_reasonable() {
        let d = BodyDimensions::adult();
        assert!((d.stature() - 1.77).abs() < 0.1);
    }

    #[test]
    fn yes_raises_both_wrists_above_head() {
        let s = Signaller::new(Vec2::ZERO, 1.0, Pose::for_sign(MarshallingSign::Yes));
        let head = s.dimensions().head_height;
        assert!(wrist_height(&s, true) > head, "right wrist above head");
        assert!(wrist_height(&s, false) > head, "left wrist above head");
    }

    #[test]
    fn no_raises_only_one_wrist() {
        let s = Signaller::new(Vec2::ZERO, 1.0, Pose::for_sign(MarshallingSign::No));
        let shoulder = s.dimensions().shoulder_height;
        assert!(wrist_height(&s, true) > shoulder, "right wrist up");
        assert!(wrist_height(&s, false) < shoulder, "left wrist down");
    }

    #[test]
    fn neutral_wrists_hang_low() {
        let s = Signaller::new(Vec2::ZERO, 1.0, Pose::neutral());
        let hip = s.dimensions().hip_height;
        assert!(wrist_height(&s, true) < hip);
        assert!(wrist_height(&s, false) < hip);
    }

    #[test]
    fn position_translates_all_parts() {
        let at_origin = Signaller::new(Vec2::ZERO, 0.3, Pose::neutral());
        let moved = Signaller::new(Vec2::new(10.0, -5.0), 0.3, Pose::neutral());
        let a = at_origin.body_parts();
        let b = moved.body_parts();
        for (pa, pb) in a.iter().zip(&b) {
            match (pa, pb) {
                (BodyPart::Sphere(sa), BodyPart::Sphere(sb)) => {
                    let delta = sb.center - sa.center;
                    assert!((delta.x - 10.0).abs() < 1e-12);
                    assert!((delta.y + 5.0).abs() < 1e-12);
                    assert!(delta.z.abs() < 1e-12);
                }
                (BodyPart::Capsule(ca), BodyPart::Capsule(cb)) => {
                    let delta = cb.a - ca.a;
                    assert!((delta.x - 10.0).abs() < 1e-12);
                }
                _ => panic!("part order changed"),
            }
        }
    }

    #[test]
    fn heading_rotates_frontal_plane() {
        // facing +y (heading π/2): the frontal plane is the x-z plane, so a
        // raised arm should displace in x, not y.
        let s = Signaller::new(
            Vec2::ZERO,
            std::f64::consts::FRAC_PI_2,
            Pose::for_sign(MarshallingSign::Yes),
        );
        let parts = s.body_parts();
        let wrists: Vec<Vec3> = parts
            .iter()
            .filter_map(|p| match p {
                BodyPart::Capsule(c) => Some(c.b),
                _ => None,
            })
            .collect();
        // all capsule endpoints stay near the y=0 plane
        for w in wrists {
            assert!(
                w.y.abs() < 1e-9,
                "frontal plane should be x-z, got y={}",
                w.y
            );
        }
    }

    #[test]
    fn chest_between_hip_and_shoulder() {
        let s = Signaller::new(Vec2::new(2.0, 3.0), 0.0, Pose::neutral());
        let c = s.chest();
        assert!(c.z > s.dimensions().hip_height && c.z < s.dimensions().shoulder_height);
        assert!((c.xy().distance(Vec2::new(2.0, 3.0))) < 1e-9);
    }

    #[test]
    fn scaling_is_uniform() {
        let d = BodyDimensions::adult();
        let s = d.scaled(1.1);
        assert!((s.stature() - d.stature() * 1.1).abs() < 1e-12);
        assert!((s.upper_arm - d.upper_arm * 1.1).abs() < 1e-12);
        assert!((s.torso_radius - d.torso_radius * 1.1).abs() < 1e-12);
    }

    #[test]
    fn proportions_change_limbs_not_stature() {
        let d = BodyDimensions::adult();
        let p = d.with_proportions(1.15, 0.9);
        assert_eq!(p.stature(), d.stature());
        assert!((p.upper_arm - d.upper_arm * 1.15).abs() < 1e-12);
        assert!((p.torso_radius - d.torso_radius * 0.9).abs() < 1e-12);
        assert_eq!(p.shoulder_height, d.shoulder_height);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        BodyDimensions::adult().scaled(0.0);
    }

    #[test]
    fn custom_dimensions_apply() {
        let mut d = BodyDimensions::adult();
        d.head_radius = 0.2;
        let s = Signaller::new(Vec2::ZERO, 0.0, Pose::neutral()).with_dimensions(d);
        let has_big_head = s.body_parts().iter().any(|p| match p {
            BodyPart::Sphere(sp) => (sp.radius - 0.2).abs() < 1e-12,
            _ => false,
        });
        assert!(has_big_head);
    }
}
