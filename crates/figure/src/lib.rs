//! Synthetic human signaller for the `hdc` workspace.
//!
//! The paper evaluates sign recognition on camera frames of a human making
//! marshalling signs at known altitude / distance / relative azimuth
//! (Figure 4). We have no camera or human, so this crate renders the closest
//! synthetic equivalent: an articulated capsule-limb skeleton posed into the
//! paper's three signs (plus distractors), projected through the pinhole
//! camera of `hdc-geometry` and rasterised with `hdc-raster`.
//!
//! The substitution preserves the phenomena that drive the paper's results:
//!
//! * foreshortening with relative azimuth — at high azimuth the arms project
//!   onto the torso and the contour signature collapses (the dead angle),
//! * apparent size shrinking with altitude and distance (the 2–5 m window),
//! * contour length driving per-frame processing time (38 ms vs 27 ms).
//!
//! # Example
//! ```
//! use hdc_figure::{MarshallingSign, ViewSpec, render_sign};
//! let view = ViewSpec::paper_default(0.0, 5.0, 3.0);
//! let frame = render_sign(MarshallingSign::No, &view);
//! assert!(frame.pixels().iter().any(|p| *p > 0), "signaller visible");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pose;
mod render;
mod skeleton;

pub use pose::{MarshallingSign, Pose, PoseLibrary};
pub use render::{paint_signaller, render_pose, render_sign, render_signaller, ViewSpec};
pub use skeleton::{BodyDimensions, BodyPart, Signaller};
