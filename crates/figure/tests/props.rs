//! Property-based tests for the synthetic signaller.

use hdc_figure::{render_pose, BodyPart, Pose, Signaller, ViewSpec};
use hdc_geometry::Vec2;
use proptest::prelude::*;

fn plausible_pose() -> impl Strategy<Value = Pose> {
    (
        0.0f64..2.9,
        0.0f64..2.2,
        0.0f64..2.9,
        0.0f64..2.2,
        0.05f64..0.3,
    )
        .prop_map(|(la, lf, ra, rf, st)| Pose {
            left_abduction: la,
            left_flexion: lf,
            right_abduction: ra,
            right_flexion: rf,
            stance_half_width: st,
        })
}

proptest! {
    #[test]
    fn body_parts_always_nine_and_finite(pose in plausible_pose(), heading in -4.0f64..4.0, x in -20.0f64..20.0, y in -20.0f64..20.0) {
        let s = Signaller::new(Vec2::new(x, y), heading, pose);
        let parts = s.body_parts();
        prop_assert_eq!(parts.len(), 9);
        for p in parts {
            match p {
                BodyPart::Capsule(c) => {
                    prop_assert!(c.a.is_finite() && c.b.is_finite());
                    prop_assert!(c.radius > 0.0);
                }
                BodyPart::Sphere(sp) => {
                    prop_assert!(sp.center.is_finite());
                    prop_assert!(sp.radius > 0.0);
                }
            }
        }
    }

    #[test]
    fn feet_on_ground_head_on_top(pose in plausible_pose()) {
        let s = Signaller::new(Vec2::ZERO, 0.0, pose);
        let mut min_z = f64::INFINITY;
        let mut max_z = f64::NEG_INFINITY;
        for p in s.body_parts() {
            match p {
                BodyPart::Capsule(c) => {
                    min_z = min_z.min(c.a.z).min(c.b.z);
                    max_z = max_z.max(c.a.z).max(c.b.z);
                }
                BodyPart::Sphere(sp) => {
                    max_z = max_z.max(sp.center.z + sp.radius);
                }
            }
        }
        prop_assert!(min_z.abs() < 1e-9, "feet at ground level, got {}", min_z);
        prop_assert!(max_z > 1.5 && max_z < 2.6, "stature bounds: {}", max_z);
    }

    #[test]
    fn every_plausible_pose_renders_visibly(pose in plausible_pose(), az in 0.0f64..90.0) {
        let frame = render_pose(pose, &ViewSpec::paper_default(az, 5.0, 3.0));
        let lit = frame.pixels().iter().filter(|p| **p > 0).count();
        prop_assert!(lit > 300, "figure nearly invisible at azimuth {}: {} px", az, lit);
    }

    #[test]
    fn lerp_stays_plausible(a in plausible_pose(), b in plausible_pose(), t in 0.0f64..1.0) {
        let mid = a.lerp(&b, t);
        prop_assert!(mid.is_plausible());
    }

    #[test]
    fn heading_only_rotates_the_silhouette(pose in plausible_pose(), h1 in -3.0f64..3.0, h2 in -3.0f64..3.0) {
        // total silhouette "mass" (pixel count from a fixed overhead-ish view)
        // varies with heading, but the 3-D parts' sizes do not
        let s1 = Signaller::new(Vec2::ZERO, h1, pose);
        let s2 = Signaller::new(Vec2::ZERO, h2, pose);
        let len = |s: &Signaller| -> f64 {
            s.body_parts()
                .iter()
                .map(|p| match p {
                    BodyPart::Capsule(c) => c.length(),
                    BodyPart::Sphere(_) => 0.0,
                })
                .sum()
        };
        prop_assert!((len(&s1) - len(&s2)).abs() < 1e-9);
    }
}
